"""Chain-fusion unit tests: tracing, settlement, invalidation.

The hypothesis differential (``test_batch_equivalence``) pins fused
behavior against the per-hop oracle across random scenarios; these
tests pin the *mechanism* — what fuses and what must not, how the
tri-state cache behaves, that settled counters match the per-hop twin
bit-for-bit including two-branch VLAN byte deltas, and that the
steering layer drops programs before any strict delete lands.
"""

import pickle

from repro.linuxnet import VethPair
from repro.net import MacAddress, make_udp_frame
from repro.perf.dataplane import _build_chain
from repro.switch import (
    Datapath,
    FlowEntry,
    FlowMatch,
    FusedChain,
    Output,
    PopVlan,
    PushVlan,
    VirtualLink,
)
from repro.switch.actions import Controller

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def _frames(count, vlans=(None,)):
    return [make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                           4000 + i, 5001, bytes([i % 251]),
                           vlan=vlans[i % len(vlans)])
            for i in range(count)]


def _vlan_chain():
    """push(100) -> forward -> pop, with a byte-capturing terminal.

    An untagged ingress frame grows 4 bytes mid-chain and shrinks
    back; a tagged one keeps its length throughout — the two-branch
    wire-length case the fused byte counters must settle exactly.
    """
    hops = [Datapath(0x7000 + i, name=f"vhop{i}") for i in range(3)]
    hops[0].add_port("ingress")
    link01 = VirtualLink.connect(hops[0], hops[1], name="vl01")
    link12 = VirtualLink.connect(hops[1], hops[2], name="vl12")
    pair = VethPair("final-sw", "final-wire")
    received = []
    pair.b.set_up()
    pair.b.attach_handler(lambda dev, fr: received.append(fr.to_bytes()))
    final = hops[2].add_port("final", device=pair.a)
    hops[0].install(FlowEntry(
        match=FlowMatch(in_port=1),
        actions=(PushVlan(100), Output(link01.far_port(hops[0]).port_no))))
    hops[1].install(FlowEntry(
        match=FlowMatch(in_port=link01.far_port(hops[1]).port_no),
        actions=(Output(link12.far_port(hops[1]).port_no),)))
    hops[2].install(FlowEntry(
        match=FlowMatch(in_port=link12.far_port(hops[2]).port_no),
        actions=(PopVlan(), Output(final.port_no))))
    return hops, (link01, link12), received


def _snapshot(hops, links):
    state = {}
    for hop in hops:
        state[hop.name] = {
            "rx": hop.rx_packets, "dropped": hop.dropped,
            "lookups": hop.table.lookups, "matches": hop.table.matches,
            "flows": [(e.priority, e.match.describe(),
                       e.packets, e.bytes) for e in hop.table],
            "ports": {n: (p.rx_packets, p.rx_bytes,
                          p.tx_packets, p.tx_bytes)
                      for n, p in hop.ports.items()},
        }
    state["links"] = [link.carried for link in links]
    return state


def test_two_branch_vlan_chain_counters_match_per_hop_twin():
    frames = _frames(20, vlans=(None, 5, 7))
    fused_hops, fused_links, fused_rx = _vlan_chain()
    fused_hops[0].process_batch_from(1, frames)
    perhop_hops, perhop_links, perhop_rx = _vlan_chain()
    for hop in perhop_hops:
        hop.fusion.enabled = False
    perhop_hops[0].process_batch_from(1, frames)

    assert fused_hops[0].fusion.hits == 20
    assert fused_rx == perhop_rx
    assert _snapshot(fused_hops, fused_links) == \
        _snapshot(perhop_hops, perhop_links)


def test_fused_program_shape():
    hops, _links, _rx = _vlan_chain()
    hops[0].process_batch_from(1, _frames(2, vlans=(None, 5)))
    entry = next(iter(hops[0].table))
    program = entry.fused
    assert isinstance(program, FusedChain)
    assert len(program.hops) == 3
    assert program.two_branch  # push on an untagged branch grows it
    assert program.kwargs == {"vlan": None, "vlan_pcp": 0}
    assert program.valid()


def test_single_hop_chain_is_not_fused():
    hops = _build_chain(1)
    hops[0].process_batch_from(1, _frames(5))
    engine = hops[0].fusion
    assert engine.hits == 0 and engine.programs_built == 0
    # Negative-cached: one attribute read per frame from here on.
    entry = next(iter(hops[0].table))
    assert entry.fused == engine.epoch


def test_unfuseable_shapes_negative_cache_and_epoch_retrace():
    hops = _build_chain(2)
    first = hops[0]
    engine = first.fusion
    # Make the downstream hop unfuseable: punt instead of forwarding.
    last = hops[-1]
    victim = next(iter(last.table))
    last.install(FlowEntry(match=victim.match, actions=(Controller(),),
                           priority=victim.priority))
    first.process_batch_from(1, _frames(4))
    entry = next(iter(first.table))
    assert entry.fused == engine.epoch
    assert engine.misses == 4 and engine.hits == 0
    # Restore a forwardable terminal; the stale negative verdict holds
    # until an epoch bump (steering-level invalidation) retries it.
    sink = last.port_by_name("sink")
    last.install(FlowEntry(match=victim.match,
                           actions=(Output(sink.port_no),),
                           priority=victim.priority))
    first.process_batch_from(1, _frames(4))
    assert engine.hits == 0
    engine.invalidate()
    first.process_batch_from(1, _frames(4))
    assert engine.hits == 4 and engine.programs_built == 1


def test_taps_keep_fusion_off():
    hops = _build_chain(2)
    hops[0].taps.append(lambda port, frame: None)
    hops[0].process_batch_from(1, _frames(6))
    assert hops[0].fusion.hits == 0
    assert hops[0].fusion.misses == 0  # fusion never engaged at all
    assert hops[-1].port_by_name("sink").tx_packets == 6


def test_frame_dependent_downstream_candidate_bails_trace():
    hops = _build_chain(2)
    last = hops[-1]
    in_no = next(iter(last.table)).match.in_port
    side = last.add_port("side")
    # A higher-priority CIDR entry on the far table: the next-hop
    # winner now depends on frame payload, so the chain must not fuse.
    last.install(FlowEntry(
        match=FlowMatch(in_port=in_no, ip_dst="10.9.0.0/16"),
        actions=(Output(side.port_no),), priority=200))
    first = hops[0]
    first.process_batch_from(1, _frames(5))
    assert first.fusion.hits == 0
    assert next(iter(first.table)).fused == first.fusion.epoch
    assert last.port_by_name("sink").tx_packets == 5


def test_flow_mod_invalidates_then_refuses():
    hops = _build_chain(4)
    first = hops[0]
    engine = first.fusion
    first.process_batch_from(1, _frames(8))
    assert engine.hits == 8
    # Direct flow-mod on a mid-chain table (no steering hook fires):
    # the flush-time validity check must catch the version bump.
    mid = hops[2]
    victim = next(iter(mid.table))
    mid.install(FlowEntry(match=victim.match, actions=victim.actions,
                          priority=victim.priority))
    first.process_batch_from(1, _frames(8))
    assert engine.invalidations == 1
    assert engine.hits == 8  # second batch fell back
    first.process_batch_from(1, _frames(8))
    assert engine.hits == 16  # re-traced against the new table
    assert hops[-1].port_by_name("sink").tx_packets == 24


def test_link_rewire_invalidates_ingress_program():
    hops = _build_chain(2)
    first = hops[0]
    first.process_batch_from(1, _frames(3))
    entry = next(iter(first.table))
    assert isinstance(entry.fused, FusedChain)
    link = first.ports[2].peer_link
    link.detach()
    # Proactive: the endpoint datapaths' engines dropped their caches.
    assert entry.fused is None
    first.process_batch_from(1, _frames(3))
    assert first.fusion.hits == 3  # still only the first batch


def test_pickled_entries_shed_fused_programs():
    hops = _build_chain(2)
    hops[0].process_batch_from(1, _frames(2))
    entry = next(iter(hops[0].table))
    assert isinstance(entry.fused, FusedChain)
    clone = pickle.loads(pickle.dumps(entry))
    assert clone.fused is None
    assert clone.match.describe() == entry.match.describe()


def test_steering_uninstall_drops_programs_before_strict_deletes():
    """Satellite contract: by the time any ``flow_delete`` reaches a
    table, no fused program may be alive anywhere on the node."""
    from test_core_steering import (
        fake_instance,
        manager_with_interfaces,
        simple_graph,
    )

    manager, wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})

    datapaths = [manager.base.datapath,
                 manager.graphs["g1"].lsi.datapath]

    def live_programs():
        return [entry for dp in datapaths for entry in dp.table
                if isinstance(entry.fused, FusedChain)]

    manager.inject_batch("lan0", _frames(10))
    assert manager.base.datapath.fusion.hits == 10
    assert live_programs(), "the steering chain should have fused"

    seen = []
    for network_controller in (manager.base_controller,
                               manager.graphs["g1"].controller):
        original = network_controller.flow_delete

        def spying(*args, _original=original, **kwargs):
            seen.append(len(live_programs()))
            return _original(*args, **kwargs)

        network_controller.flow_delete = spying

    assert manager.uninstall_rule("g1", "r1")
    assert seen, "uninstall_rule issued no strict deletes"
    assert all(count == 0 for count in seen), (
        "fused programs were still live when a strict delete landed")


def test_steering_stats_and_metrics_surface_fusion():
    from test_core_steering import (
        fake_instance,
        manager_with_interfaces,
        simple_graph,
    )

    manager, wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})
    manager.inject_batch("lan0", _frames(4))

    stats = manager.fusion_stats()
    assert set(stats) == {"LSI-0", "LSI-g1"}
    assert stats["LSI-0"]["hits"] == 4
    assert stats["LSI-0"]["programs-built"] == 1
    for lsi_stats in stats.values():
        assert set(lsi_stats) == {"hits", "misses", "invalidations",
                                  "programs-built", "enabled"}
