"""Chain-fusion unit tests: tracing, settlement, invalidation.

The hypothesis differential (``test_batch_equivalence``) pins fused
behavior against the per-hop oracle across random scenarios; these
tests pin the *mechanism* — what fuses and what must not, how the
tri-state cache behaves, that settled counters match the per-hop twin
bit-for-bit including two-branch VLAN byte deltas, and that the
steering layer drops programs before any strict delete lands.
"""

import pickle

from repro.linuxnet import VethPair
from repro.net import MacAddress, make_udp_frame
from repro.perf.dataplane import _build_chain
from repro.switch import (
    Datapath,
    FlowEntry,
    FlowMatch,
    FusedChain,
    Output,
    PopVlan,
    PushVlan,
    SelectOutput,
    VirtualLink,
)
from repro.switch.actions import Controller
from repro.switch.fusion import FusedSelectChain

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def _frames(count, vlans=(None,)):
    return [make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                           4000 + i, 5001, bytes([i % 251]),
                           vlan=vlans[i % len(vlans)])
            for i in range(count)]


def _vlan_chain():
    """push(100) -> forward -> pop, with a byte-capturing terminal.

    An untagged ingress frame grows 4 bytes mid-chain and shrinks
    back; a tagged one keeps its length throughout — the two-branch
    wire-length case the fused byte counters must settle exactly.
    """
    hops = [Datapath(0x7000 + i, name=f"vhop{i}") for i in range(3)]
    hops[0].add_port("ingress")
    link01 = VirtualLink.connect(hops[0], hops[1], name="vl01")
    link12 = VirtualLink.connect(hops[1], hops[2], name="vl12")
    pair = VethPair("final-sw", "final-wire")
    received = []
    pair.b.set_up()
    pair.b.attach_handler(lambda dev, fr: received.append(fr.to_bytes()))
    final = hops[2].add_port("final", device=pair.a)
    hops[0].install(FlowEntry(
        match=FlowMatch(in_port=1),
        actions=(PushVlan(100), Output(link01.far_port(hops[0]).port_no))))
    hops[1].install(FlowEntry(
        match=FlowMatch(in_port=link01.far_port(hops[1]).port_no),
        actions=(Output(link12.far_port(hops[1]).port_no),)))
    hops[2].install(FlowEntry(
        match=FlowMatch(in_port=link12.far_port(hops[2]).port_no),
        actions=(PopVlan(), Output(final.port_no))))
    return hops, (link01, link12), received


def _snapshot(hops, links):
    state = {}
    for hop in hops:
        state[hop.name] = {
            "rx": hop.rx_packets, "dropped": hop.dropped,
            "lookups": hop.table.lookups, "matches": hop.table.matches,
            "flows": [(e.priority, e.match.describe(),
                       e.packets, e.bytes) for e in hop.table],
            "ports": {n: (p.rx_packets, p.rx_bytes,
                          p.tx_packets, p.tx_bytes)
                      for n, p in hop.ports.items()},
        }
    state["links"] = [link.carried for link in links]
    return state


def test_two_branch_vlan_chain_counters_match_per_hop_twin():
    frames = _frames(20, vlans=(None, 5, 7))
    fused_hops, fused_links, fused_rx = _vlan_chain()
    fused_hops[0].process_batch_from(1, frames)
    perhop_hops, perhop_links, perhop_rx = _vlan_chain()
    for hop in perhop_hops:
        hop.fusion.enabled = False
    perhop_hops[0].process_batch_from(1, frames)

    assert fused_hops[0].fusion.hits == 20
    assert fused_rx == perhop_rx
    assert _snapshot(fused_hops, fused_links) == \
        _snapshot(perhop_hops, perhop_links)


def test_fused_program_shape():
    hops, _links, _rx = _vlan_chain()
    hops[0].process_batch_from(1, _frames(2, vlans=(None, 5)))
    entry = next(iter(hops[0].table))
    program = entry.fused
    assert isinstance(program, FusedChain)
    assert len(program.hops) == 3
    assert program.two_branch  # push on an untagged branch grows it
    assert program.kwargs == {"vlan": None, "vlan_pcp": 0}
    assert program.valid()


def test_single_hop_chain_is_not_fused():
    hops = _build_chain(1)
    hops[0].process_batch_from(1, _frames(5))
    engine = hops[0].fusion
    assert engine.hits == 0 and engine.programs_built == 0
    # Negative-cached: one attribute read per frame from here on.
    entry = next(iter(hops[0].table))
    assert entry.fused == engine.epoch


def test_unfuseable_shapes_negative_cache_and_epoch_retrace():
    hops = _build_chain(2)
    first = hops[0]
    engine = first.fusion
    # Make the downstream hop unfuseable: punt instead of forwarding.
    last = hops[-1]
    victim = next(iter(last.table))
    last.install(FlowEntry(match=victim.match, actions=(Controller(),),
                           priority=victim.priority))
    first.process_batch_from(1, _frames(4))
    entry = next(iter(first.table))
    assert entry.fused == engine.epoch
    assert engine.misses == 4 and engine.hits == 0
    # Restore a forwardable terminal; the stale negative verdict holds
    # until an epoch bump (steering-level invalidation) retries it.
    sink = last.port_by_name("sink")
    last.install(FlowEntry(match=victim.match,
                           actions=(Output(sink.port_no),),
                           priority=victim.priority))
    first.process_batch_from(1, _frames(4))
    assert engine.hits == 0
    engine.invalidate()
    first.process_batch_from(1, _frames(4))
    assert engine.hits == 4 and engine.programs_built == 1


def test_taps_keep_fusion_off():
    hops = _build_chain(2)
    hops[0].taps.append(lambda port, frame: None)
    hops[0].process_batch_from(1, _frames(6))
    assert hops[0].fusion.hits == 0
    assert hops[0].fusion.misses == 0  # fusion never engaged at all
    assert hops[-1].port_by_name("sink").tx_packets == 6


def test_frame_dependent_downstream_candidate_bails_trace():
    hops = _build_chain(2)
    last = hops[-1]
    in_no = next(iter(last.table)).match.in_port
    side = last.add_port("side")
    # A higher-priority CIDR entry on the far table: the next-hop
    # winner now depends on frame payload, so the chain must not fuse.
    last.install(FlowEntry(
        match=FlowMatch(in_port=in_no, ip_dst="10.9.0.0/16"),
        actions=(Output(side.port_no),), priority=200))
    first = hops[0]
    first.process_batch_from(1, _frames(5))
    assert first.fusion.hits == 0
    assert next(iter(first.table)).fused == first.fusion.epoch
    assert last.port_by_name("sink").tx_packets == 5


def test_flow_mod_invalidates_then_refuses():
    hops = _build_chain(4)
    first = hops[0]
    engine = first.fusion
    first.process_batch_from(1, _frames(8))
    assert engine.hits == 8
    # Direct flow-mod on a mid-chain table (no steering hook fires):
    # the flush-time validity check must catch the version bump.
    mid = hops[2]
    victim = next(iter(mid.table))
    mid.install(FlowEntry(match=victim.match, actions=victim.actions,
                          priority=victim.priority))
    first.process_batch_from(1, _frames(8))
    assert engine.invalidations == 1
    assert engine.hits == 8  # second batch fell back
    first.process_batch_from(1, _frames(8))
    assert engine.hits == 16  # re-traced against the new table
    assert hops[-1].port_by_name("sink").tx_packets == 24


def test_link_rewire_invalidates_ingress_program():
    hops = _build_chain(2)
    first = hops[0]
    first.process_batch_from(1, _frames(3))
    entry = next(iter(first.table))
    assert isinstance(entry.fused, FusedChain)
    link = first.ports[2].peer_link
    link.detach()
    # Proactive: the endpoint datapaths' engines dropped their caches.
    assert entry.fused is None
    first.process_batch_from(1, _frames(3))
    assert first.fusion.hits == 3  # still only the first batch


def test_pickled_entries_shed_fused_programs_and_dispatch_slots():
    hops = _build_chain(2)
    hops[0].process_batch_from(1, _frames(2))
    entry = next(iter(hops[0].table))
    assert isinstance(entry.fused, FusedChain)
    assert entry.dispatch, "the batch should have built a dispatch slot"
    clone = pickle.loads(pickle.dumps(entry))
    assert clone.fused is None
    assert clone.dispatch == []
    assert clone.match.describe() == entry.match.describe()
    # The live entry's slot registration is untouched by the round
    # trip, and the clone's list is its own object.
    assert entry.dispatch
    assert clone.dispatch is not entry.dispatch


def test_dispatch_skips_ingress_walk():
    hops = _build_chain(2)
    first = hops[0]
    engine = first.fusion
    first.process_batch_from(1, _frames(5))
    # Every matched frame of the batch came through the dispatch slot
    # (the slot is built by the first frame, before any lookup runs).
    assert engine.dispatch_hits == 5 and engine.dispatch_misses == 0
    assert engine.hits == 5
    slot = engine.dispatch[1][None]
    assert slot[0] == first.table.version
    assert slot[1] is next(iter(first.table))
    assert slot[2] is slot[1].fused
    assert slot in slot[1].dispatch
    # Ingress lookup totals settled exactly as if lookup() had run.
    assert first.table.lookups == 5 and first.table.matches == 5
    assert hops[-1].port_by_name("sink").tx_packets == 5


def test_frame_dependent_slice_gets_negative_slot():
    hops = _build_chain(2)
    first = hops[0]
    primary = next(iter(first.table))
    side = first.add_port("side")
    # A higher-priority CIDR entry on the *ingress* table: the slice
    # winner now depends on frame payload, so the slice must not
    # dispatch — but the chain still fuses through the lookup path.
    first.install(FlowEntry(
        match=FlowMatch(in_port=1, ip_dst="10.99.0.0/16"),
        actions=(Output(side.port_no),), priority=200))
    first.process_batch_from(1, _frames(6))
    engine = first.fusion
    assert engine.dispatch_hits == 0 and engine.dispatch_misses == 6
    assert engine.hits == 6
    slot = engine.dispatch[1][None]
    assert slot[1] is None and slot[0] == first.table.version
    assert primary.dispatch == []


def test_invalidate_tears_down_dispatch_but_keeps_counters():
    hops = _build_chain(2)
    first = hops[0]
    engine = first.fusion
    first.process_batch_from(1, _frames(4))
    entry = next(iter(first.table))
    slot = engine.dispatch[1][None]
    assert entry.dispatch
    engine.invalidate()
    # The dispatch *table* is gone and every slot is stamped stale —
    # including ones a mid-batch loop may still hold — but the
    # dispatch hit/miss counters are cumulative telemetry and never
    # rewind.
    assert engine.dispatch == {}
    assert entry.dispatch == []
    assert slot[0] == -1 and slot[1] is None and slot[2] is None
    assert engine.dispatch_hits == 4 and engine.dispatch_misses == 0
    first.process_batch_from(1, _frames(4))
    assert engine.dispatch_hits == 8


def _select_chain(group=None):
    """forward hop -> stateless/stateful spread over two captures."""
    hops = [Datapath(0x7100 + i, name=f"sel{i}") for i in range(2)]
    hops[0].add_port("ingress")
    link = VirtualLink.connect(hops[0], hops[1], name="sl01")
    captures = []
    for name in ("r0", "r1"):
        pair = VethPair(f"{name}-sw", f"{name}-wire")
        received = []
        pair.b.set_up()
        pair.b.attach_handler(
            lambda dev, fr, rx=received: rx.append(fr.to_bytes()))
        hops[1].add_port(name, device=pair.a)
        captures.append(received)
    replica_ports = tuple(hops[1].port_by_name(n).port_no
                          for n in ("r0", "r1"))
    hops[0].install(FlowEntry(
        match=FlowMatch(in_port=1),
        actions=(Output(link.far_port(hops[0]).port_no),)))
    hops[1].install(FlowEntry(
        match=FlowMatch(in_port=link.far_port(hops[1]).port_no),
        actions=(SelectOutput(replica_ports, group=group),)))
    return hops, captures


def test_select_terminal_fuses_per_replica():
    hops, captures = _select_chain()
    hops[0].process_batch_from(1, _frames(20))
    engine = hops[0].fusion
    assert engine.hits == 20 and engine.programs_built == 1
    program = next(iter(hops[0].table)).fused
    assert isinstance(program, FusedSelectChain)
    assert len(program.hops) == 1 and program.state is None
    assert program.valid()
    # The spread really split the batch across both replicas, and
    # every frame landed somewhere.
    assert captures[0] and captures[1]
    assert len(captures[0]) + len(captures[1]) == 20


def test_select_chain_refuses_stale_state_table():
    hops, _captures = _select_chain(group="t/lb")
    hops[0].process_batch_from(1, _frames(8))
    program = next(iter(hops[0].table)).fused
    assert isinstance(program, FusedSelectChain)
    assert program.state is hops[1].flow_state.peek("t/lb")
    assert program.valid()
    # Dropping the group (graph teardown) recreates the table on next
    # consultation; the program must refuse to steer against the
    # forgotten state and fall back.
    hops[1].flow_state.drop("t/lb")
    assert not program.valid()
    engine = hops[0].fusion
    before = engine.invalidations
    hops[0].process_batch_from(1, _frames(4))
    assert engine.invalidations == before + 1
    assert hops[0].rx_packets == 12  # every frame still delivered


def test_splice_terminal_matches_replace_semantics():
    hops, _links, received = _vlan_chain()
    program_frames = _frames(3, vlans=(None, 5, 7))
    hops[0].process_batch_from(1, program_frames)
    entry = next(iter(hops[0].table))
    program = entry.fused
    # push(100) then pop composes to an identity-tag rewrite; the
    # splice applies it without running the frame constructor.
    assert program.splice is not None
    spliced = [program.splice(frame) for frame in program_frames]
    assert [fr.to_bytes() for fr in spliced] == received[:3]
    assert all(fr.vlan is None and fr.vlan_pcp == 0 for fr in spliced)


def test_steering_uninstall_drops_programs_before_strict_deletes():
    """Satellite contract: by the time any ``flow_delete`` reaches a
    table, no fused program may be alive anywhere on the node."""
    from test_core_steering import (
        fake_instance,
        manager_with_interfaces,
        simple_graph,
    )

    manager, wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})

    datapaths = [manager.base.datapath,
                 manager.graphs["g1"].lsi.datapath]

    def live_programs():
        return [entry for dp in datapaths for entry in dp.table
                if isinstance(entry.fused, FusedChain)]

    manager.inject_batch("lan0", _frames(10))
    assert manager.base.datapath.fusion.hits == 10
    assert live_programs(), "the steering chain should have fused"

    seen = []
    for network_controller in (manager.base_controller,
                               manager.graphs["g1"].controller):
        original = network_controller.flow_delete

        def spying(*args, _original=original, **kwargs):
            seen.append(len(live_programs()))
            return _original(*args, **kwargs)

        network_controller.flow_delete = spying

    assert manager.uninstall_rule("g1", "r1")
    assert seen, "uninstall_rule issued no strict deletes"
    assert all(count == 0 for count in seen), (
        "fused programs were still live when a strict delete landed")


def test_steering_stats_and_metrics_surface_fusion():
    from test_core_steering import (
        fake_instance,
        manager_with_interfaces,
        simple_graph,
    )

    manager, wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})
    manager.inject_batch("lan0", _frames(4))

    stats = manager.fusion_stats()
    assert set(stats) == {"LSI-0", "LSI-g1"}
    assert stats["LSI-0"]["hits"] == 4
    assert stats["LSI-0"]["programs-built"] == 1
    # The injected frames all share one (port, vlan) slice, so once
    # the slot exists every matched frame is a dispatch hit.
    assert stats["LSI-0"]["dispatch-hits"] == 4
    assert stats["LSI-0"]["dispatch-misses"] == 0
    for lsi_stats in stats.values():
        assert set(lsi_stats) == {"hits", "misses", "dispatch-hits",
                                  "dispatch-misses", "invalidations",
                                  "programs-built", "enabled"}
