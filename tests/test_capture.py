"""PcapCapture: observability of the deployed dataplane."""

import io

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.net.pcap import PcapReader
from repro.perf.capture import PcapCapture

CLIENT = MacAddress("02:aa:00:00:00:01")
REMOTE = MacAddress("02:aa:00:00:00:02")


def deployed_node():
    node = ComputeNode("cap-test")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    graph = Nffg(graph_id="g")
    graph.add_nf("nat1", "nat", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")
    node.deploy(graph)
    return node


def test_datapath_tap_sees_both_sides_of_the_nat():
    node = deployed_node()
    capture = PcapCapture()
    capture.attach_datapath(node.steering.base.datapath)
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT, REMOTE, "192.168.1.100", "8.8.8.8", 5353, 53, b"q"))
    # LSI-0 saw the pre-NAT ingress frame and the post-NAT egress frame.
    assert len(capture) == 2
    sources = [parse_frame(raw).ipv4.src for _ts, raw in capture.frames]
    assert sources == ["192.168.1.100", "203.0.113.2"]
    capture.detach_all()
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT, REMOTE, "192.168.1.100", "8.8.8.8", 5353, 53, b"q2"))
    assert len(capture) == 2  # detached: nothing new


def test_pcap_file_roundtrip(tmp_path):
    node = deployed_node()
    capture = PcapCapture()
    capture.attach_datapath(node.steering.base.datapath)
    for index in range(3):
        node.wire("lan0").transmit(make_udp_frame(
            CLIENT, REMOTE, "192.168.1.100", "8.8.8.8", 5353, 53,
            f"pkt{index}".encode()))
    path = tmp_path / "trace.pcap"
    written = capture.save(str(path))
    assert written == 6  # 3 ingress + 3 egress at LSI-0
    with open(path, "rb") as stream:
        records = list(PcapReader(stream))
    assert len(records) == 6
    timestamps = [ts for ts, _raw in records]
    assert timestamps == sorted(timestamps)


def test_in_memory_write():
    node = deployed_node()
    capture = PcapCapture()
    capture.attach_datapath(node.steering.base.datapath)
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT, REMOTE, "192.168.1.100", "8.8.8.8", 1, 53, b"x"))
    buffer = io.BytesIO()
    assert capture.write(buffer) == len(capture)
    buffer.seek(0)
    assert len(list(PcapReader(buffer))) == len(capture)
