"""Control-plane concurrency: the races the per-graph locks close.

Every test here fails (or flakes, which in CI is the same thing) when
the per-graph locking is removed:

* the PUT upsert test reproduces the ``_put_graph`` check-then-act
  TOCTOU — N threads PUT the same fresh graph; without the lock held
  across the deployed-check and the verb, several threads race into
  ``deploy`` and the losers surface spurious 409s (lost updates);
* the PUT-vs-tick test races REST mutations against control-loop
  ticks on the same reconciler — unlocked, the tick's plan compiles
  against desired state mid-replacement;
* the journal tests hammer one ring from many threads — the old
  unsynchronized ``len(log) == max_events`` check undercounted drops.
"""

import itertools
import json
import threading
import urllib.request

import pytest

from repro.core import ComputeNode
from repro.core.reconciler import (
    EventJournal,
    GraphLockRegistry,
    ShardedEventJournal,
    shard_of_graph,
)
from repro.nffg.json_codec import nffg_to_dict
from repro.nffg.model import Nffg
from repro.resources.capabilities import NodeCapabilities, NodeClass
from repro.rest.app import RestApp
from repro.rest.client import RestClient
from repro.rest.server import NodeHttpServer
from repro.telemetry import Autoscaler, ControlLoop


def _big_node(name="conc"):
    caps = NodeCapabilities(
        node_class=NodeClass.DATACENTER, cpu_cores=1024, cpu_mhz=2600,
        ram_mb=1 << 22, disk_mb=1 << 26,
        features=frozenset({"docker", "kvm", "linux", "netns",
                            "iptables", "xfrm"}))
    node = ComputeNode(name, capabilities=caps)
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def _graph(graph_id, rounds="0"):
    graph = Nffg(graph_id=graph_id, name=f"conc {graph_id}")
    graph.add_nf("fw", "firewall", technology="docker",
                 config={"round": rounds})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:fw:lan")
    graph.add_flow_rule("r2", "vnf:fw:wan", "endpoint:wan")
    return graph


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive(), "worker thread hung"


class TestPutUpsertRace:
    def test_concurrent_puts_of_fresh_graph_one_201_rest_200(self):
        """The ``_put_graph`` TOCTOU regression test.

        Eight threads PUT the same not-yet-deployed graph through one
        barrier.  The locked ``apply`` upsert admits exactly one
        creator (201) and updates for everyone else (200); the
        unpatched handler let several threads pass the deployed-check
        and the deploy losers returned 409 "already deployed".
        """
        node = _big_node()
        app = RestApp(node)
        document = json.dumps(nffg_to_dict(_graph("race"))).encode()
        threads = 8
        barrier = threading.Barrier(threads)
        statuses = []

        def put():
            barrier.wait()
            response = app.handle("PUT", "/nffg/race", document)
            statuses.append(response.status)

        _run_threads([put] * threads)
        assert sorted(statuses) == [200] * (threads - 1) + [201], (
            f"lost update: expected one 201 and {threads - 1} 200s, "
            f"got {sorted(statuses)}")
        assert node.orchestrator.status("race")["converged"]

    def test_put_vs_control_loop_tick_on_same_graph(self):
        """REST updates racing loop ticks must never corrupt state.

        One writer thread re-PUTs the graph with alternating configs
        while another drives bare reconcile ticks as fast as it can —
        the control loop's half of the race without the interval
        pacing.  Every PUT must succeed (200), no tick may raise, and
        the surviving desired state must converge.
        """
        node = _big_node()
        app = RestApp(node)
        client = RestClient(app)
        client.deploy_graph(_graph("live"))
        reconciler = node.orchestrator.reconciler
        stop = threading.Event()
        tick_errors = []
        put_statuses = []

        def writer():
            for round_no in range(30):
                document = nffg_to_dict(_graph("live", rounds=str(round_no)))
                put_statuses.append(
                    client.put("/nffg/live", document).status)
            stop.set()

        def ticker():
            while not stop.is_set():
                try:
                    reconciler.tick("live")
                except Exception as exc:  # pragma: no cover - bug path
                    tick_errors.append(exc)
                    stop.set()

        _run_threads([writer, ticker])
        assert not tick_errors, f"tick raced a PUT: {tick_errors[0]!r}"
        assert put_statuses == [200] * 30
        node.orchestrator.reconcile("live")
        assert node.orchestrator.status("live")["converged"]


class TestGraphLockRegistry:
    def test_same_graph_same_lock_and_reentrant(self):
        locks = GraphLockRegistry()
        lock = locks.get("g1")
        assert locks.get("g1") is lock
        assert locks.get("g2") is not lock
        with lock:
            with locks.get("g1"):  # reentrant: deploy -> reconcile -> tick
                pass
        assert len(locks) == 2

    def test_concurrent_get_returns_one_lock_per_graph(self):
        locks = GraphLockRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def fetch():
            barrier.wait()
            seen.append(locks.get("contested"))

        _run_threads([fetch] * 8)
        assert len(set(map(id, seen))) == 1


class TestJournalThreadSafety:
    def test_ring_full_drop_accounting_is_exact(self):
        """The drop-undercount regression test: ``len(events) +
        dropped`` must equal total appends, exactly, under contention
        on a full ring."""
        journal = EventJournal(max_events=50)
        per_thread, threads = 400, 8

        def hammer():
            for _ in range(per_thread):
                journal.append("g", "tick")

        _run_threads([hammer] * threads)
        total = per_thread * threads
        assert len(journal.events("g")) == 50
        assert journal.dropped_count("g") == total - 50
        seqs = [event.seq for event in journal.events("g")]
        assert seqs == sorted(seqs) and len(set(seqs)) == 50

    def test_sharded_journal_routes_counts_and_merges(self):
        journal = ShardedEventJournal(shards=3, max_events=10)
        graph_ids = [f"g{i}" for i in range(9)]

        def hammer(graph_id):
            for _ in range(40):
                journal.append(graph_id, "tick")

        _run_threads([lambda g=g: hammer(g) for g in graph_ids])
        for graph_id in graph_ids:
            assert len(journal.events(graph_id)) == 10
            assert journal.dropped_count(graph_id) == 30
            shard = shard_of_graph(graph_id, 3)
            assert journal.shard_for(graph_id) is journal.shards[shard]
        assert journal.graphs() == sorted(graph_ids)
        merged = journal.merged_events()
        assert len(merged) == 90
        assert [e.seq for e in merged] == sorted(e.seq for e in merged)

    def test_adopt_preserves_pre_sharding_history(self):
        single = EventJournal(max_events=5)
        for _ in range(8):
            single.append("old", "deploy")
        sharded = ShardedEventJournal(shards=2, max_events=5)
        sharded.adopt(single)
        assert len(sharded.events("old")) == 5
        assert sharded.dropped_count("old") == 3
        assert sharded.last_kind("old") == "deploy"

    def test_shard_of_graph_is_stable_and_bounded(self):
        for graph_id in ("a", "graph-1", "x" * 60):
            shard = shard_of_graph(graph_id, 4)
            assert 0 <= shard < 4
            assert shard == shard_of_graph(graph_id, 4)
        assert shard_of_graph("anything", 1) == 0


class TestShardedLoopDeterminism:
    def test_direct_step_order_is_deterministic(self):
        """Two identical sharded fleets step to identical journals."""
        def run_once():
            node = _big_node()
            loop = ControlLoop(node.orchestrator, node.telemetry, shards=3)
            for i in range(6):
                node.orchestrator.reconciler.set_desired(_graph(f"g{i}"))
            for _ in range(3):
                loop.step(now=float(loop.iterations))
            journal = node.orchestrator.reconciler.journal
            return [(e.seq, e.kind, e.graph_id)
                    for e in journal.merged_events()]

        assert run_once() == run_once()

    def test_thread_mode_shard_pool_converges_fleet(self):
        node = _big_node()
        loop = ControlLoop(node.orchestrator, node.telemetry,
                           interval=0.01, shards=4)
        for i in range(12):
            node.orchestrator.reconciler.set_desired(_graph(f"g{i}"))
        loop.start()
        try:
            deadline = threading.Event()
            for _ in range(300):
                if all(node.orchestrator.status(f"g{i}")["converged"]
                       for i in range(12)
                       if f"g{i}" in node.orchestrator.deployed) \
                        and len(node.orchestrator.deployed) == 12:
                    break
                deadline.wait(0.02)
        finally:
            loop.stop()
        assert len(node.orchestrator.deployed) == 12
        for i in range(12):
            assert node.orchestrator.status(f"g{i}")["converged"]
        assert loop.tick_errors == 0, loop.last_error


class TestRealSocketConcurrency:
    @pytest.fixture()
    def server(self):
        node = _big_node("sock")
        server = NodeHttpServer(node).start()
        yield node, server
        server.stop()

    @staticmethod
    def _request(url, method="GET", document=None, timeout=10):
        body = (None if document is None
                else json.dumps(document).encode())
        request = urllib.request.Request(url, data=body, method=method)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as reply:
                return reply.status, json.loads(reply.read() or b"null")
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read() or b"{}")

    def test_disjoint_and_overlapping_clients_no_lost_updates(self, server):
        """N clients over a real socket: disjoint graphs deploy and
        converge; overlapping updates of one shared graph all land
        (every PUT 200/201, exactly one creator), and the journal's
        exact counts survive the contention."""
        node, http = server
        base = http.url
        client_count = 6
        updates_per_client = 5
        results = [[] for _ in range(client_count)]

        def run_client(index):
            own = f"own-{index}"
            status, _ = self._request(
                f"{base}/nffg/{own}", "PUT", nffg_to_dict(_graph(own)))
            results[index].append(("own", status))
            for round_no in range(updates_per_client):
                status, _ = self._request(
                    f"{base}/nffg/shared", "PUT",
                    nffg_to_dict(_graph("shared",
                                        rounds=f"{index}.{round_no}")))
                results[index].append(("shared", status))
            status, _ = self._request(
                f"{base}/graphs/{own}/reconcile", "POST")
            results[index].append(("reconcile", status))

        _run_threads([lambda i=i: run_client(i)
                      for i in range(client_count)])

        shared_statuses = [status for per_client in results
                           for kind, status in per_client
                           if kind == "shared"]
        assert shared_statuses.count(201) <= 1
        assert all(status in (200, 201) for status in shared_statuses), (
            f"lost update over the socket: {sorted(shared_statuses)}")
        for per_client in results:
            assert per_client[0][1] == 201      # own graph created once
            assert per_client[-1][1] == 200     # reconcile converged
        graph_ids = [f"own-{i}" for i in range(client_count)] + ["shared"]
        for graph_id in graph_ids:
            status, body = self._request(f"{base}/nffg/{graph_id}/status")
            assert status == 200 and body["converged"], graph_id
            status, body = self._request(
                f"{base}/graphs/{graph_id}/events")
            assert status == 200
            journal = node.orchestrator.journal
            assert len(body["events"]) == \
                len(journal.events(graph_id))
            assert body["dropped"] == journal.dropped_count(graph_id)

    def test_policies_persist_and_autoscale_ready_over_socket(self, server):
        """PUT /graphs/{id}/policies persists into desired state, is
        readable back, survives a plain graph re-PUT, and feeds the
        autoscaler's merged policy sources with no driver attached."""
        node, http = server
        base = http.url
        status, _ = self._request(
            f"{base}/nffg/pol", "PUT", nffg_to_dict(_graph("pol")))
        assert status == 201
        policy = {"nf": "fw", "target-pps": 500.0, "max-replicas": 3}
        status, body = self._request(
            f"{base}/graphs/pol/policies", "PUT",
            {"scaling-policies": [policy]})
        assert status == 200
        assert body["scaling-policies"][0]["target-pps"] == 500.0
        # Plain re-PUT without policies must not disable autoscaling.
        status, _ = self._request(
            f"{base}/nffg/pol", "PUT",
            nffg_to_dict(_graph("pol", rounds="9")))
        assert status == 200
        status, body = self._request(f"{base}/graphs/pol/policies")
        assert status == 200 and len(body["scaling-policies"]) == 1
        scaler = Autoscaler(reconciler=node.orchestrator.reconciler,
                            registry=node.telemetry)
        assert ("pol", "fw") in scaler._policy_sources()
        # Unknown NF and malformed entries are rejected up front.
        status, body = self._request(
            f"{base}/graphs/pol/policies", "PUT",
            {"scaling-policies": [{"nf": "ghost", "target-pps": 1.0}]})
        assert status == 400 and "ghost" in body["error"]
        status, _ = self._request(
            f"{base}/graphs/pol/policies", "PUT",
            {"scaling-policies": [{"nf": "fw"}]})
        assert status == 400
        # An empty array clears the persisted policies.
        status, body = self._request(
            f"{base}/graphs/pol/policies", "PUT",
            {"scaling-policies": []})
        assert status == 200
        status, body = self._request(f"{base}/graphs/pol/policies")
        assert body["scaling-policies"] == []
