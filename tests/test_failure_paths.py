"""Failure injection: the orchestrator must leave no residue behind.

These tests break components mid-deployment (drivers that explode,
steering that cannot resolve, exhausted resources) and assert the node
returns to a clean state: no namespaces, no allocations, no flow
entries, no half-registered instances.
"""

import pytest

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError
from repro.core import ComputeNode, OrchestrationError
from repro.nffg.model import Nffg
from repro.openflow.channel import ChannelClosed, ControlChannel
from repro.resources.capabilities import NodeCapabilities, NodeClass


def nat_graph(graph_id="g1", technology=None):
    graph = Nffg(graph_id=graph_id)
    graph.add_nf("nat1", "nat", technology=technology, config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")
    return graph


def fresh_node(**kwargs):
    node = ComputeNode("failure-test", **kwargs)
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def assert_pristine(node):
    assert node.orchestrator.list_graphs() == []
    assert node.accountant.ram_used_mb == 0
    assert node.accountant.cpu_used == 0
    assert node.steering.flow_counts() == {"LSI-0": 0}
    assert node.steering.graphs == {}
    # Only the root namespace remains.
    assert set(node.host.namespaces) == {"root"}


class ExplodingDriver(ComputeDriver):
    """Driver that fails at a chosen lifecycle step."""

    technology = Technology.DOCKER
    netns_prefix = "boom"

    def __init__(self, host, fail_at="create"):
        super().__init__(host)
        self.fail_at = fail_at

    def create(self, spec):
        if self.fail_at == "create":
            raise DriverError("injected create failure")
        return super().create(spec)

    def configure(self, instance):
        if self.fail_at == "configure":
            raise DriverError("injected configure failure")
        super().configure(instance)

    def start(self, instance):
        if self.fail_at == "start":
            raise DriverError("injected start failure")
        super().start(instance)


@pytest.mark.parametrize("fail_at", ["create", "configure", "start"])
def test_driver_failure_rolls_back_cleanly(fail_at):
    node = fresh_node()
    # Swap the Docker driver for the exploding one.
    node.compute._drivers[Technology.DOCKER] = ExplodingDriver(
        node.host, fail_at=fail_at)
    with pytest.raises(OrchestrationError, match="injected"):
        node.deploy(nat_graph(technology="docker"))
    assert_pristine(node)


def test_failure_in_second_nf_rolls_back_first():
    node = fresh_node()
    node.compute._drivers[Technology.DOCKER] = ExplodingDriver(
        node.host, fail_at="create")
    graph = nat_graph()
    # First NF native (fine), second docker (explodes).
    graph.add_nf("dpi1", "dpi", technology="docker")
    graph.flow_rules = graph.flow_rules[:2]
    graph.add_flow_rule("r5", "vnf:nat1:wan", "vnf:dpi1:in")
    graph.add_flow_rule("r6", "vnf:dpi1:out", "endpoint:wan")
    with pytest.raises(OrchestrationError):
        node.deploy(graph)
    assert_pristine(node)
    # The shared-NNF registry is clean too: redeploying works.
    node.deploy(nat_graph())
    assert node.orchestrator.list_graphs() == ["g1"]


def test_steering_failure_rolls_back_instances():
    node = fresh_node()
    graph = nat_graph()
    # Reference an endpoint interface that exists in the graph but was
    # never attached to LSI-0 — steering must fail *after* instances
    # were created, exercising the rollback of live namespaces.
    graph.endpoints[1] = type(graph.endpoints[1])(
        ep_id="wan", interface="ghost0")
    with pytest.raises(OrchestrationError, match="not attached"):
        node.deploy(graph)
    assert_pristine(node)


def test_resource_exhaustion_mid_graph():
    tiny = NodeCapabilities(
        node_class=NodeClass.CPE, cpu_cores=2, cpu_mhz=1200,
        ram_mb=128, disk_mb=1024,
        features=frozenset({"native", "docker", "linux", "netns",
                            "iptables", "xfrm"}))
    node = fresh_node(capabilities=tiny)
    graph = nat_graph()
    # Two DPI containers at 512 MB each cannot fit 128 MB.
    graph.add_nf("dpi1", "dpi", technology="docker")
    graph.flow_rules = graph.flow_rules[:2]
    graph.add_flow_rule("r5", "vnf:nat1:wan", "vnf:dpi1:in")
    graph.add_flow_rule("r6", "vnf:dpi1:out", "endpoint:wan")
    with pytest.raises(OrchestrationError, match="needs"):
        node.deploy(graph)
    assert_pristine(node)


def test_double_deploy_rejected_without_side_effects():
    node = fresh_node()
    node.deploy(nat_graph())
    flows = node.steering.flow_counts()
    with pytest.raises(OrchestrationError, match="already deployed"):
        node.deploy(nat_graph())
    assert node.steering.flow_counts() == flows


def test_undeploy_unknown_graph():
    node = fresh_node()
    with pytest.raises(OrchestrationError, match="no deployed graph"):
        node.undeploy("ghost")


def test_closed_control_channel_raises():
    channel = ControlChannel()
    channel.close()
    with pytest.raises(ChannelClosed):
        channel.controller_end.send(b"anything")


def test_channel_buffers_undelivered():
    channel = ControlChannel()
    channel.controller_end.send(b"early")  # no receiver yet
    assert channel.undelivered == [("switch", b"early")]


def test_agent_reports_codec_errors():
    from repro.openflow import LsiController, SwitchAgent
    from repro.switch import Datapath
    dp = Datapath(1)
    channel = ControlChannel()
    agent = SwitchAgent(dp, channel)
    controller = LsiController(channel)
    with pytest.raises(RuntimeError, match="error code"):
        channel.controller_end.send(b"\xff\xff garbage not openflow")
    assert agent.errors_sent == 1


def add_dpi(graph):
    graph.add_nf("dpi1", "dpi", technology="docker")
    graph.add_flow_rule("r5", "vnf:nat1:wan", "vnf:dpi1:in")
    graph.add_flow_rule("r6", "vnf:dpi1:out", "endpoint:wan")
    return graph


@pytest.mark.parametrize("fail_at", ["configure", "start"])
def test_mid_update_failure_is_checkpointed_and_retryable(fail_at):
    """A driver exploding partway through an update must leave no
    orphaned allocations, no leaked instances, a consistent status()
    and a plan that simply re-runs to convergence once the driver
    recovers."""
    node = fresh_node()
    driver = ExplodingDriver(node.host, fail_at="never")
    node.compute._drivers[Technology.DOCKER] = driver
    node.deploy(nat_graph())
    rules_before = {
        rule_id: realized.segments[:]
        for rule_id, realized in
        node.steering.graph_network("g1").installed.items()}

    driver.fail_at = fail_at
    with pytest.raises(OrchestrationError, match="injected"):
        node.update(add_dpi(nat_graph()))

    record = node.orchestrator.deployed["g1"]
    # Every allocation belongs to a live, tracked instance — nothing
    # orphaned, nothing leaked.
    owners = sorted(a.owner for a in node.accountant.allocations())
    tracked = sorted(f"g1/{nf_id}" for nf_id in record.instances)
    assert owners == tracked
    assert "g1/dpi1" in owners  # created, checkpointed, kept for retry
    # status() stays consistent mid-divergence.
    status = node.orchestrator.status("g1")
    assert status["nfs"]["nat1"]["state"] == "running"
    assert status["converged"] is False
    # Unchanged NF rules were never dropped.
    network = node.steering.graph_network("g1")
    for rule_id, segments in rules_before.items():
        assert network.installed[rule_id].segments == segments

    # The plan is re-runnable: heal the driver and retry the update.
    driver.fail_at = "never"
    node.update(add_dpi(nat_graph()))
    assert node.compute.get("g1-dpi1").is_running
    assert node.orchestrator.status("g1")["converged"] is True
    assert sorted(network.installed) == ["r1", "r2", "r3", "r4",
                                         "r5", "r6"]


def test_failed_deploy_journal_survives_rollback():
    node = fresh_node()
    node.compute._drivers[Technology.DOCKER] = ExplodingDriver(
        node.host, fail_at="create")
    with pytest.raises(OrchestrationError):
        node.deploy(nat_graph(technology="docker"))
    assert_pristine(node)
    kinds = [event.kind for event in node.orchestrator.events("g1")]
    assert "step-failed" in kinds
    assert "desired-cleared" in kinds
    assert "removed" in kinds


def test_lifecycle_misuse_through_manager():
    from repro.compute.instances import LifecycleError
    node = fresh_node()
    node.deploy(nat_graph(technology="docker"))
    record = node.orchestrator.deployed["g1"]
    instance_id = record.instances["nat1"].instance_id
    # Starting a RUNNING instance is an FSM violation.
    with pytest.raises(LifecycleError):
        node.compute.start(instance_id)
    # The instance is still intact and running.
    assert node.compute.get(instance_id).is_running
