"""REST app, client and socket-server tests."""

import json

import pytest

from repro import ComputeNode, Nffg, RestApp, RestClient
from repro.nffg.json_codec import nffg_to_dict


@pytest.fixture
def node():
    node = ComputeNode("rest-test")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


@pytest.fixture
def client(node):
    return RestClient(RestApp(node))


def nat_graph(graph_id="g1"):
    graph = Nffg(graph_id=graph_id)
    graph.add_nf("nat1", "nat", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")
    return graph


class TestRestApp:
    def test_root_describes_node(self, client):
        description = client.node_description()
        assert description["name"] == "rest-test"
        assert "native" in description["technologies"]
        assert description["deployed-graphs"] == []

    def test_deploy_and_status(self, client):
        body = client.deploy_graph(nat_graph())
        assert body["nfs"]["nat1"]["technology"] == "native"
        status = client.graph_status("g1")
        assert status["nfs"]["nat1"]["state"] == "running"
        assert client.list_graphs() == ["g1"]

    def test_get_deployed_graph_document(self, client):
        client.deploy_graph(nat_graph())
        response = client.get("/nffg/g1")
        assert response.status == 200
        assert response.body["forwarding-graph"]["id"] == "g1"

    def test_put_is_update_when_deployed(self, client, node):
        client.deploy_graph(nat_graph())
        updated = nat_graph()
        updated.flow_rules = updated.flow_rules[:3]
        response = client.put("/nffg/g1", nffg_to_dict(updated))
        assert response.status == 200  # update, not create
        assert response.body["flow-rules"] == 3

    def test_undeploy(self, client, node):
        client.deploy_graph(nat_graph())
        client.undeploy_graph("g1")
        assert client.list_graphs() == []
        assert node.accountant.ram_used_mb == 0

    def test_404_for_unknown_paths_and_graphs(self, client):
        assert client.get("/nope").status == 404
        assert client.get("/nffg/ghost/status").status == 404
        assert client.delete("/nffg/ghost").status == 404

    def test_405_for_wrong_method(self, client):
        response = client.app.handle("DELETE", "/")
        assert response.status == 405

    def test_400_for_malformed_body(self, client):
        response = client.app.handle("PUT", "/nffg/g1", b"{broken")
        assert response.status == 400
        response = client.app.handle("PUT", "/nffg/g1", b"")
        assert response.status == 400

    def test_400_for_id_mismatch(self, client):
        response = client.put("/nffg/other", nffg_to_dict(nat_graph()))
        assert response.status == 400

    def test_409_for_orchestration_failure(self, client):
        graph = Nffg(graph_id="bad")
        graph.add_nf("x", "ghost-template")
        graph.add_endpoint("lan", "lan0")
        graph.add_flow_rule("r1", "endpoint:lan", "vnf:x:lan")
        response = client.put("/nffg/bad", nffg_to_dict(graph))
        assert response.status == 409
        assert "unknown template" in response.body["error"]

    def test_nnfs_inventory(self, client):
        rows = client.list_nnfs()
        names = {row["name"] for row in rows}
        assert "iptables-nat" in names
        assert "strongswan" in names

    def test_response_bytes_json(self, client):
        response = client.get("/")
        decoded = json.loads(response.to_bytes())
        assert decoded["name"] == "rest-test"


class TestHttpServer:
    def test_real_socket_roundtrip(self, node):
        import urllib.error
        import urllib.request

        from repro.rest.server import NodeHttpServer
        try:
            server = NodeHttpServer(node, port=0).start()
        except OSError:
            pytest.skip("cannot bind a localhost socket here")
        try:
            with urllib.request.urlopen(f"{server.url}/") as reply:
                body = json.loads(reply.read())
            assert body["name"] == "rest-test"
            request = urllib.request.Request(
                f"{server.url}/nffg/g1",
                data=json.dumps(nffg_to_dict(nat_graph())).encode(),
                method="PUT")
            with urllib.request.urlopen(request) as reply:
                assert reply.status == 201
            with urllib.request.urlopen(f"{server.url}/nffg") as reply:
                assert json.loads(reply.read())["nffgs"] == ["g1"]
            # Error status propagates over the socket too.
            try:
                urllib.request.urlopen(f"{server.url}/nffg/ghost")
                pytest.fail("expected HTTP 404")
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
        finally:
            server.stop()
