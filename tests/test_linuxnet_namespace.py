"""End-to-end IP stack tests: delivery, forwarding, NAT, ICMP, XFRM."""

import pytest

from repro.ipsec import SecurityAssociation, derive_keys
from repro.linuxnet import LinuxHost
from repro.linuxnet.iptables import Match, Rule
from repro.linuxnet.xfrm import Selector, XfrmDirection, XfrmPolicy, XfrmState
from repro.net.icmp import ICMP_ECHO_REQUEST, IcmpMessage
from repro.net.ipv4 import IPPROTO_ICMP, IPv4Packet
from repro.net.transport import UdpDatagram


def two_hosts():
    """root(ns h1) --veth-- (ns h2); addresses 10.0.0.1/24, 10.0.0.2/24."""
    host = LinuxHost()
    h1 = host.add_namespace("h1")
    h2 = host.add_namespace("h2")
    host.create_veth("e1", "e2", ns_a="h1", ns_b="h2")
    h1.device("e1").add_address("10.0.0.1", 24)
    h2.device("e2").add_address("10.0.0.2", 24)
    h1.device("e1").set_up()
    h2.device("e2").set_up()
    return host, h1, h2


def router_topology():
    """h1 --- router --- h2 across two /24s."""
    host = LinuxHost()
    h1 = host.add_namespace("h1")
    router = host.add_namespace("router")
    h2 = host.add_namespace("h2")
    host.create_veth("e1", "r1", ns_a="h1", ns_b="router")
    host.create_veth("r2", "e2", ns_a="router", ns_b="h2")
    h1.device("e1").add_address("10.0.1.10", 24)
    router.device("r1").add_address("10.0.1.1", 24)
    router.device("r2").add_address("10.0.2.1", 24)
    h2.device("e2").add_address("10.0.2.10", 24)
    for ns, dev in ((h1, "e1"), (router, "r1"), (router, "r2"), (h2, "e2")):
        ns.device(dev).set_up()
    h1.routes.add_cidr("0.0.0.0/0", "e1", gateway="10.0.1.1")
    h2.routes.add_cidr("0.0.0.0/0", "e2", gateway="10.0.2.1")
    router.ip_forward = True
    return host, h1, router, h2


def test_local_udp_delivery():
    _host, h1, h2 = two_hosts()
    inbox = []
    h2.bind_udp(5001, lambda ns, pkt, dgram: inbox.append(
        (pkt.src, dgram.payload)))
    h1.send_udp("10.0.0.1", "10.0.0.2", 4000, 5001, b"hello")
    assert inbox == [("10.0.0.1", b"hello")]


def test_udp_to_unbound_port_is_silent():
    _host, h1, h2 = two_hosts()
    h1.send_udp("10.0.0.1", "10.0.0.2", 4000, 9999, b"nobody")
    assert h2.rx_delivered == 1  # delivered to stack, no handler


def test_double_bind_rejected():
    _host, _h1, h2 = two_hosts()
    h2.bind_udp(53, lambda *a: None)
    with pytest.raises(ValueError):
        h2.bind_udp(53, lambda *a: None)


def test_forwarding_across_router():
    _host, h1, router, h2 = router_topology()
    inbox = []
    h2.bind_udp(7000, lambda ns, pkt, dgram: inbox.append(
        (pkt.src, pkt.ttl, dgram.payload)))
    h1.send_udp("10.0.1.10", "10.0.2.10", 1234, 7000, b"routed")
    assert len(inbox) == 1
    src, ttl, payload = inbox[0]
    assert src == "10.0.1.10"
    assert ttl == 63  # router decremented
    assert payload == b"routed"
    assert router.rx_forwarded == 1


def test_forwarding_disabled_drops():
    _host, h1, router, h2 = router_topology()
    router.ip_forward = False
    inbox = []
    h2.bind_udp(7000, lambda ns, pkt, dgram: inbox.append(dgram))
    h1.send_udp("10.0.1.10", "10.0.2.10", 1234, 7000, b"dropped")
    assert inbox == []
    assert router.rx_dropped_filter == 1


def test_filter_forward_drop_rule():
    _host, h1, router, h2 = router_topology()
    router.iptables.append("filter", "FORWARD", Rule(
        match=Match(src="10.0.1.0/24"), target="DROP"))
    inbox = []
    h2.bind_udp(7000, lambda ns, pkt, dgram: inbox.append(dgram))
    h1.send_udp("10.0.1.10", "10.0.2.10", 1, 7000, b"blocked")
    assert inbox == []
    assert router.rx_dropped_filter == 1


def test_ping_through_router():
    _host, h1, _router, h2 = router_topology()
    replies = []
    # h1's own ICMP echo handling would consume the reply; watch via a
    # raw hook with echo disabled instead.
    h1.icmp_echo_enabled = False
    h1.bind_raw(IPPROTO_ICMP, lambda ns, pkt: replies.append(pkt))
    request = IcmpMessage(icmp_type=ICMP_ECHO_REQUEST, code=0,
                          identifier=55, sequence=1, payload=b"ping")
    h1.send_ip(IPv4Packet(src="10.0.1.10", dst="10.0.2.10",
                          proto=IPPROTO_ICMP, payload=request.to_bytes()))
    assert len(replies) == 1
    reply = IcmpMessage.from_bytes(replies[0].payload)
    assert reply.is_echo_reply
    assert reply.identifier == 55


def test_snat_masquerade_rewrites_and_reply_translates_back():
    _host, h1, router, h2 = router_topology()
    # Masquerade traffic leaving r2.
    router.iptables.append("nat", "POSTROUTING", Rule(
        match=Match(out_iface="r2"), target="MASQUERADE"))
    seen_at_h2 = []
    h2.bind_udp(7000, lambda ns, pkt, dgram: (
        seen_at_h2.append((pkt.src, dgram.src_port)),
        ns.send_udp(pkt.dst, pkt.src, dgram.dst_port, dgram.src_port,
                    b"reply")))
    reply_inbox = []
    h1.bind_udp(1234, lambda ns, pkt, dgram: reply_inbox.append(
        (pkt.src, dgram.payload)))
    h1.send_udp("10.0.1.10", "10.0.2.10", 1234, 7000, b"nat me")
    # h2 must see the router's address, not h1's.
    assert seen_at_h2 == [("10.0.2.1", 1234)]
    # h1 must see the reply arriving from the original destination.
    assert reply_inbox == [("10.0.2.10", b"reply")]


def test_dnat_port_forward():
    _host, h1, router, h2 = router_topology()
    # Forward router:8080 -> h2:7000
    router.iptables.append("nat", "PREROUTING", Rule(
        match=Match(in_iface="r1", proto=17, dport=(8080, 8080)),
        target="DNAT", target_args={"to_ip": "10.0.2.10", "to_port": 7000}))
    inbox = []
    h2.bind_udp(7000, lambda ns, pkt, dgram: inbox.append(
        (pkt.dst, dgram.dst_port, dgram.payload)))
    h1.send_udp("10.0.1.10", "10.0.2.1", 4000, 8080, b"forwarded")
    assert inbox == [("10.0.2.10", 7000, b"forwarded")]


def test_mangle_mark_then_filter_on_mark():
    _host, h1, router, h2 = router_topology()
    router.iptables.append("mangle", "PREROUTING", Rule(
        match=Match(in_iface="r1"), target="MARK",
        target_args={"set_mark": 0x7}))
    router.iptables.append("filter", "FORWARD", Rule(
        match=Match(mark=(0x7, 0xFFFFFFFF)), target="DROP"))
    inbox = []
    h2.bind_udp(7000, lambda ns, pkt, dgram: inbox.append(dgram))
    h1.send_udp("10.0.1.10", "10.0.2.10", 1, 7000, b"marked")
    assert inbox == []
    assert router.rx_dropped_filter == 1


def test_ttl_expiry_dropped():
    _host, h1, router, h2 = router_topology()
    inbox = []
    h2.bind_udp(7000, lambda ns, pkt, dgram: inbox.append(dgram))
    datagram = UdpDatagram(src_port=1, dst_port=7000, payload=b"old")
    h1.send_ip(IPv4Packet(src="10.0.1.10", dst="10.0.2.10", proto=17,
                          payload=datagram.to_bytes("10.0.1.10",
                                                    "10.0.2.10"),
                          ttl=1))
    assert inbox == []
    assert router.rx_bad_packets == 1


def test_no_route_counted():
    _host, h1, _router, _h2 = router_topology()
    h1.routes.remove_device("e1")
    h1.send_udp("10.0.1.10", "203.0.113.99", 1, 2, b"lost")
    assert h1.rx_no_route == 1


def make_tunnel(ns_left, ns_right, left_outer, right_outer,
                left_inner_cidr, right_inner_cidr):
    """Install symmetric xfrm state+policy pairs on two namespaces."""
    enc_lr, auth_lr = derive_keys(b"secret", b"ni", b"nr", 0x1001)
    enc_rl, auth_rl = derive_keys(b"secret", b"ni", b"nr", 0x1002)
    sa_lr_out = SecurityAssociation(spi=0x1001, src=left_outer,
                                    dst=right_outer, enc_key=enc_lr,
                                    auth_key=auth_lr)
    sa_lr_in = SecurityAssociation(spi=0x1001, src=left_outer,
                                   dst=right_outer, enc_key=enc_lr,
                                   auth_key=auth_lr)
    sa_rl_out = SecurityAssociation(spi=0x1002, src=right_outer,
                                    dst=left_outer, enc_key=enc_rl,
                                    auth_key=auth_rl)
    sa_rl_in = SecurityAssociation(spi=0x1002, src=right_outer,
                                   dst=left_outer, enc_key=enc_rl,
                                   auth_key=auth_rl)
    ns_left.xfrm.add_state(XfrmState(sa=sa_lr_out))
    ns_right.xfrm.add_state(XfrmState(sa=sa_lr_in))
    ns_right.xfrm.add_state(XfrmState(sa=sa_rl_out))
    ns_left.xfrm.add_state(XfrmState(sa=sa_rl_in))
    ns_left.xfrm.add_policy(XfrmPolicy(
        selector=Selector(left_inner_cidr, right_inner_cidr),
        direction=XfrmDirection.OUT, tmpl_src=left_outer,
        tmpl_dst=right_outer))
    ns_left.xfrm.add_policy(XfrmPolicy(
        selector=Selector(right_inner_cidr, left_inner_cidr),
        direction=XfrmDirection.IN, tmpl_src=right_outer,
        tmpl_dst=left_outer))
    ns_right.xfrm.add_policy(XfrmPolicy(
        selector=Selector(right_inner_cidr, left_inner_cidr),
        direction=XfrmDirection.OUT, tmpl_src=right_outer,
        tmpl_dst=left_outer))
    ns_right.xfrm.add_policy(XfrmPolicy(
        selector=Selector(left_inner_cidr, right_inner_cidr),
        direction=XfrmDirection.IN, tmpl_src=left_outer,
        tmpl_dst=right_outer))


def test_xfrm_tunnel_end_to_end():
    """UDP between tunnel-private prefixes crosses as ESP and back."""
    host = LinuxHost()
    left = host.add_namespace("left")
    right = host.add_namespace("right")
    host.create_veth("l0", "r0", ns_a="left", ns_b="right")
    left.device("l0").add_address("203.0.113.1", 24)
    right.device("r0").add_address("203.0.113.2", 24)
    left.device("l0").set_up()
    right.device("r0").set_up()
    # Inner (protected) addresses live on loopback-ish private prefixes.
    left.device("lo").add_address("192.168.100.1", 32)
    right.device("lo").add_address("192.168.200.1", 32)
    left.routes.add_cidr("192.168.200.0/24", "l0")
    right.routes.add_cidr("192.168.100.0/24", "r0")
    make_tunnel(left, right, "203.0.113.1", "203.0.113.2",
                "192.168.100.0/24", "192.168.200.0/24")

    inbox = []
    right.bind_udp(5001, lambda ns, pkt, dgram: inbox.append(
        (pkt.src, pkt.dst, dgram.payload)))
    # Sniff the wire to confirm ESP, not plaintext.
    wire = []
    original = right.device("r0").receive

    def sniffer(frame):
        wire.append(frame)
        original(frame)

    right.device("r0").receive = sniffer
    left.send_udp("192.168.100.1", "192.168.200.1", 4000, 5001, b"tunnel!")
    assert inbox == [("192.168.100.1", "192.168.200.1", b"tunnel!")]
    assert left.esp_out == 1
    assert right.esp_in == 1
    assert len(wire) == 1
    from repro.net.ipv4 import IPv4Packet as IP
    outer = IP.from_bytes(wire[0].payload)
    assert outer.proto == 50
    assert b"tunnel!" not in outer.payload


def test_xfrm_missing_state_drops():
    host = LinuxHost()
    ns = host.namespace("root")
    ns.xfrm.add_policy(XfrmPolicy(
        selector=Selector("0.0.0.0/0", "10.99.0.0/16"),
        direction=XfrmDirection.OUT, tmpl_src="1.1.1.1", tmpl_dst="2.2.2.2"))
    ns.routes.add_cidr("10.99.0.0/16", "lo")
    ns.send_udp("127.0.0.1", "10.99.1.1", 1, 2, b"x")
    assert ns.esp_errors == 1
