"""Documentation lint: every module under ``src/repro`` is documented.

The model layer only composes into services if outsiders can read it
(RDCL 3D's argument — arXiv:1702.08242), so a missing module docstring
is a tier-1 failure, not a style nit.  New modules must say what they
model and where they sit in the package map before they land.
"""

import ast
import pathlib

import repro

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent


def test_every_module_has_a_docstring():
    missing = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
        if ast.get_docstring(tree) is None:
            missing.append(str(path.relative_to(SRC_ROOT.parent)))
    assert not missing, (
        "modules without a module docstring (document what the module "
        f"models and why it exists): {missing}")


def test_switch_docstrings_cover_the_dataplane_contracts():
    """The three switch hot-path modules must keep documenting their
    core contracts: the index layout, the batch pipeline, and when
    compiled action closures are invalidated."""
    switch = SRC_ROOT / "switch"
    flowtable = (switch / "flowtable.py").read_text(encoding="utf-8")
    datapath = (switch / "datapath.py").read_text(encoding="utf-8")
    actions = (switch / "actions.py").read_text(encoding="utf-8")
    assert "Two-level index" in flowtable
    assert "Small-table bypass" in flowtable
    assert "invalidate" in flowtable
    assert "process_batch" in datapath
    assert "compile_actions" in datapath
    assert "compile_actions" in actions and "invalidate" in actions
