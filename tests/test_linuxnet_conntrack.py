"""Conntrack table unit tests."""

import pytest

from repro.linuxnet.conntrack import ConnState, ConnTrack, FlowTuple


FLOW = FlowTuple("10.0.0.1", "8.8.8.8", 17, 1234, 53)


def test_create_and_lookup_both_directions():
    table = ConnTrack()
    entry = table.create(FLOW)
    hit, direction = table.lookup(FLOW)
    assert hit is entry and direction == "orig"
    hit, direction = table.lookup(FLOW.reversed())
    assert hit is entry and direction == "reply"


def test_new_until_confirmed():
    table = ConnTrack()
    entry = table.create(FLOW)
    assert entry.state is ConnState.NEW
    table.confirm(entry)
    assert entry.state is ConnState.ESTABLISHED


def test_snat_reindexes_reply():
    table = ConnTrack()
    entry = table.create(FLOW)
    entry.snat = ("203.0.113.1", 40000)
    table.apply_nat(entry)
    reply = FlowTuple("8.8.8.8", "203.0.113.1", 17, 53, 40000)
    hit, direction = table.lookup(reply)
    assert hit is entry and direction == "reply"
    # The pre-NAT reply tuple no longer matches.
    assert table.lookup(FLOW.reversed()) is None


def test_snat_port_zero_keeps_original_port():
    table = ConnTrack()
    entry = table.create(FLOW)
    entry.snat = ("203.0.113.1", 0)
    table.apply_nat(entry)
    reply = FlowTuple("8.8.8.8", "203.0.113.1", 17, 53, 1234)
    assert table.lookup(reply) is not None


def test_dnat_reindexes_reply():
    table = ConnTrack()
    entry = table.create(FLOW)
    entry.dnat = ("192.168.1.10", 8053)
    table.apply_nat(entry)
    reply = FlowTuple("192.168.1.10", "10.0.0.1", 17, 8053, 1234)
    assert table.lookup(reply) is not None


def test_remove_clears_both_directions():
    table = ConnTrack()
    entry = table.create(FLOW)
    table.remove(entry)
    assert table.lookup(FLOW) is None
    assert table.lookup(FLOW.reversed()) is None


def test_capacity_limit():
    table = ConnTrack(max_entries=2)
    table.create(FLOW)
    table.create(FlowTuple("10.0.0.2", "8.8.8.8", 17, 1, 53))
    with pytest.raises(OverflowError):
        table.create(FlowTuple("10.0.0.3", "8.8.8.8", 17, 2, 53))
    assert table.insert_failures == 1


def test_entries_lists_each_connection_once():
    table = ConnTrack()
    table.create(FLOW)
    table.create(FlowTuple("10.0.0.2", "8.8.8.8", 17, 9, 53))
    assert len(table.entries()) == 2
