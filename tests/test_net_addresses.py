"""Tests for MAC/IPv4 address helpers, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.net import MacAddress, int_to_ip, ip_to_int, parse_cidr


class TestMacAddress:
    def test_from_string_roundtrip(self):
        mac = MacAddress("aa:bb:cc:dd:ee:ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"
        assert int(mac) == 0xAABBCCDDEEFF

    def test_from_bytes_roundtrip(self):
        mac = MacAddress(b"\x02\x00\x00\x00\x00\x07")
        assert mac.packed == b"\x02\x00\x00\x00\x00\x07"

    def test_malformed_string_rejected(self):
        for bad in ("aa:bb:cc", "zz:bb:cc:dd:ee:ff", "aabbccddeeff", ""):
            with pytest.raises(ValueError):
                MacAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_from_index_is_locally_administered(self):
        mac = MacAddress.from_index(7)
        assert str(mac).startswith("02:")
        assert not mac.is_multicast

    def test_broadcast_and_multicast_flags(self):
        assert MacAddress("ff:ff:ff:ff:ff:ff").is_broadcast
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast

    def test_equality_with_string(self):
        assert MacAddress("aa:bb:cc:dd:ee:ff") == "aa:bb:cc:dd:ee:ff"
        assert MacAddress("aa:bb:cc:dd:ee:ff") != "aa:bb:cc:dd:ee:00"

    def test_hashable(self):
        table = {MacAddress("02:00:00:00:00:01"): "port1"}
        assert table[MacAddress("02:00:00:00:00:01")] == "port1"

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_roundtrip_property(self, value):
        assert int(MacAddress(value)) == value
        assert MacAddress(str(MacAddress(value))) == MacAddress(value)


class TestIpConversion:
    def test_known_values(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001
        assert int_to_ip(0xC0A80101) == "192.168.1.1"

    def test_malformed_rejected(self):
        for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", "10.0.0.01", ""):
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestParseCidr:
    def test_masks_host_bits(self):
        network, plen = parse_cidr("10.0.0.7/24")
        assert int_to_ip(network) == "10.0.0.0"
        assert plen == 24

    def test_zero_prefix(self):
        network, plen = parse_cidr("1.2.3.4/0")
        assert network == 0
        assert plen == 0

    def test_host_route(self):
        network, plen = parse_cidr("192.168.1.1/32")
        assert int_to_ip(network) == "192.168.1.1"

    def test_malformed_rejected(self):
        for bad in ("10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "/24"):
            with pytest.raises(ValueError):
                parse_cidr(bad)
