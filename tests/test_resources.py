"""Capabilities, accounting/admission and image-model tests."""

import pytest

from repro.resources.accounting import AdmissionError, ResourceAccountant
from repro.resources.capabilities import NodeCapabilities, NodeClass
from repro.resources.images import (
    DockerImage,
    ImageComponent,
    ImageRegistry,
    NativePackage,
    VmImage,
)


class TestCapabilities:
    def test_profiles_are_sane(self):
        cpe = NodeCapabilities.residential_cpe()
        dc = NodeCapabilities.datacenter_server()
        assert cpe.node_class is NodeClass.CPE
        assert dc.node_class is NodeClass.DATACENTER
        assert dc.ram_mb > 10 * cpe.ram_mb
        assert not cpe.supports("kvm")       # the paper's motivation
        assert cpe.supports("native")
        assert dc.supports_all({"kvm", "docker", "dpdk"})

    def test_kvm_profile_runs_all_three_flavors(self):
        cpe = NodeCapabilities.residential_cpe_with_kvm()
        assert cpe.supports_all({"kvm", "docker", "native"})

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeCapabilities(node_class=NodeClass.CPE, cpu_cores=0,
                             cpu_mhz=1, ram_mb=1, disk_mb=1)
        with pytest.raises(ValueError):
            NodeCapabilities(node_class=NodeClass.CPE, cpu_cores=1,
                             cpu_mhz=1, ram_mb=0, disk_mb=1)


class TestAccounting:
    def accountant(self):
        caps = NodeCapabilities(node_class=NodeClass.CPE, cpu_cores=4,
                                cpu_mhz=2000, ram_mb=1024, disk_mb=8192,
                                features=frozenset())
        return ResourceAccountant(caps, ram_headroom_mb=24)

    def test_allocate_and_release(self):
        accountant = self.accountant()
        allocation = accountant.allocate("g1/nf1", cpu_cores=1.0,
                                         ram_mb=100, disk_mb=50)
        assert accountant.cpu_used == 1.0
        assert accountant.ram_used_mb == 100
        accountant.release(allocation)
        assert accountant.cpu_used == 0
        assert allocation.released

    def test_headroom_reserved_for_host(self):
        accountant = self.accountant()
        assert accountant.ram_free_mb == 1000  # 1024 - 24

    def test_admission_rejects_overcommit(self):
        accountant = self.accountant()
        accountant.allocate("a", ram_mb=900)
        with pytest.raises(AdmissionError):
            accountant.allocate("b", ram_mb=200)
        assert accountant.rejections == 1

    def test_cpu_admission(self):
        accountant = self.accountant()
        accountant.allocate("a", cpu_cores=3.5)
        with pytest.raises(AdmissionError):
            accountant.allocate("b", cpu_cores=1.0)

    def test_double_release_rejected(self):
        accountant = self.accountant()
        allocation = accountant.allocate("a", ram_mb=10)
        accountant.release(allocation)
        with pytest.raises(ValueError):
            accountant.release(allocation)

    def test_negative_amounts_rejected(self):
        with pytest.raises(ValueError):
            self.accountant().allocate("a", ram_mb=-5)

    def test_resize_grows_and_shrinks(self):
        accountant = self.accountant()
        allocation = accountant.allocate("a", ram_mb=100)
        accountant.resize(allocation, ram_mb=300)
        assert accountant.ram_used_mb == 300
        accountant.resize(allocation, ram_mb=50)
        assert accountant.ram_used_mb == 50

    def test_resize_rejects_overcommit(self):
        accountant = self.accountant()
        allocation = accountant.allocate("a", ram_mb=500)
        accountant.allocate("b", ram_mb=400)
        with pytest.raises(AdmissionError):
            accountant.resize(allocation, ram_mb=700)
        assert allocation.ram_mb == 500

    def test_utilisation_fractions(self):
        accountant = self.accountant()
        accountant.allocate("a", cpu_cores=2.0, ram_mb=512)
        utilisation = accountant.utilisation()
        assert utilisation["cpu"] == pytest.approx(0.5)
        assert utilisation["ram"] == pytest.approx(0.5)


class TestImages:
    def test_sizes_compose_from_components(self):
        image = VmImage(name="x", components=(
            ImageComponent("kernel", 60.0), ImageComponent("rootfs", 400.0)))
        assert image.size_mb == 460.0

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            ImageComponent("bad", -1.0)

    def test_stock_registry_matches_table1_image_sizes(self):
        images = ImageRegistry.stock()
        assert images.get("strongswan-vm").size_mb == pytest.approx(522.0)
        assert images.get("strongswan-docker").size_mb == pytest.approx(
            240.0)
        assert images.get("strongswan-native").size_mb == pytest.approx(
            5.0)

    def test_technology_tags(self):
        images = ImageRegistry.stock()
        assert images.get("strongswan-vm").technology == "vm"
        assert images.get("strongswan-docker").technology == "docker"
        assert images.get("strongswan-native").technology == "native"

    def test_duplicate_name_rejected(self):
        registry = ImageRegistry()
        package = NativePackage(name="p", components=(
            ImageComponent("c", 1.0),))
        registry.register(package)
        with pytest.raises(ValueError):
            registry.register(package)

    def test_missing_image_raises(self):
        with pytest.raises(KeyError):
            ImageRegistry().get("ghost")

    def test_transfer_time_scales_with_size(self):
        images = ImageRegistry.stock()
        vm_pull = images.transfer_seconds("strongswan-vm", link_mbps=100)
        native_pull = images.transfer_seconds("strongswan-native",
                                              link_mbps=100)
        assert vm_pull == pytest.approx(522 * 8 / 100)
        assert vm_pull / native_pull == pytest.approx(522 / 5)

    def test_transfer_requires_positive_rate(self):
        with pytest.raises(ValueError):
            ImageRegistry.stock().transfer_seconds("strongswan-vm", 0)

    def test_docker_image_contains_metadata_layer(self):
        images = ImageRegistry.stock()
        docker = images.get("strongswan-docker")
        assert isinstance(docker, DockerImage)
        assert any("metadata" in layer.name for layer in docker.layers)
