"""Flight-recorder tracing: histograms, sampler, anomalies, CLI.

The dataplane determinism tests pin the span-tree contract: under a
fixed sim clock, identical nodes produce identical trees (counter ids,
no randomness).  The anomaly tests drive the real triggers — induced
heal, journal-ring eviction, invalidation storm, slow tick — and check
the frozen dumps correlate with journal sequence numbers.
"""

import json

import pytest

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError, Health
from repro.core import ComputeNode
from repro.core.reconciler import EventJournal
from repro.net import MacAddress, make_udp_frame
from repro.nffg.model import Nffg
from repro.resources.capabilities import NodeCapabilities
from repro.rest.app import RestApp
from repro.rest.client import RestClient
from repro.sim.engine import Simulator
from repro.telemetry import ControlLoop
from repro.telemetry.histograms import (
    LOG2_BOUNDS,
    HistogramRegistry,
    LatencyHistogram,
    render_histograms,
)
from repro.telemetry.tracing import FlightRecorder, Tracer

SRC = MacAddress("02:bb:00:00:00:01")
DST = MacAddress("02:bb:00:00:00:02")


class SickableDriver(ComputeDriver):
    """Docker-flavored driver with injectable health/restart failures."""

    technology = Technology.DOCKER
    netns_prefix = "trace"

    def __init__(self, host, restartable=True):
        super().__init__(host)
        self.sick = set()
        self.restartable = restartable

    def create(self, spec):
        instance = super().create(spec)
        self.sick.discard(spec.instance_id)
        return instance

    def restart(self, instance):
        if not self.restartable:
            raise DriverError("injected: core dump on restart")
        super().restart(instance)
        self.sick.discard(instance.instance_id)

    def health(self, instance):
        if instance.instance_id in self.sick:
            return Health(False, "injected crash")
        return super().health(instance)


def make_node(restartable=True):
    node = ComputeNode("tracing-test",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    driver = SickableDriver(node.host, restartable=restartable)
    node.compute._drivers[Technology.DOCKER] = driver
    return node, driver


def dpi_graph(replicas=1):
    graph = Nffg(graph_id="trg", name="tracing graph")
    graph.add_nf("dpi", "dpi", technology="docker", replicas=replicas)
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:dpi:in")
    graph.add_flow_rule("r2", "vnf:dpi:out", "endpoint:wan")
    return graph


def chain4_graph():
    graph = Nffg(graph_id="c4", name="chain of four")
    names = ["a", "b", "c", "d"]
    for name in names:
        graph.add_nf(name, "dpi", technology="docker")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r0", "endpoint:lan", "vnf:a:in")
    for index, (left, right) in enumerate(zip(names, names[1:])):
        graph.add_flow_rule(f"r{index + 1}", f"vnf:{left}:out",
                            f"vnf:{right}:in")
    graph.add_flow_rule("r9", "vnf:d:out", "endpoint:wan")
    return graph


def flows(count, frames_per_flow=1):
    out = []
    for f in range(count):
        for _ in range(frames_per_flow):
            out.append(make_udp_frame(SRC, DST, f"10.0.{f % 5}.{f % 31}",
                                      "10.1.0.1", 5000 + f, 53, b"t"))
    return out


# -- histograms ---------------------------------------------------------------------

def test_histogram_buckets_and_quantiles():
    histogram = LatencyHistogram()
    assert histogram.quantile(0.5) is None  # empty
    histogram.observe(1e-6)    # lands exactly on the first bound
    histogram.observe(1.5e-6)  # second bucket (1, 2] us
    histogram.observe(3e-6)    # third bucket (2, 4] us
    assert histogram.counts[0] == 1
    assert histogram.counts[1] == 1
    assert histogram.counts[2] == 1
    assert histogram.total == 3
    assert histogram.sum == pytest.approx(5.5e-6)
    p50 = histogram.quantile(0.5)
    assert 1e-6 < p50 <= 2e-6  # interpolated inside the second bucket
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    keys = histogram.percentiles()
    assert set(keys) == {"p50", "p95", "p99"}


def test_histogram_overflow_clamps_to_largest_bound():
    histogram = LatencyHistogram()
    histogram.observe(1000.0)  # beyond ~67s: the +Inf bucket
    assert histogram.counts[-1] == 1
    assert histogram.quantile(0.99) == LOG2_BOUNDS[-1]
    snapshot = histogram.snapshot()
    assert snapshot["buckets"] == {"+Inf": 1}
    assert snapshot["count"] == 1


def test_histogram_snapshot_lists_only_nonempty_buckets():
    histogram = LatencyHistogram()
    for _ in range(10):
        histogram.observe(5e-6)
    snapshot = histogram.snapshot()
    assert list(snapshot["buckets"].values()) == [10]
    assert snapshot["p50"] is not None
    json.dumps(snapshot)  # JSON-clean


def test_registry_creates_series_lazily_and_snapshots():
    registry = HistogramRegistry()
    registry.register("thing", "A thing.", ("lsi",))
    registry.register("thing", "ignored duplicate", ("other",))  # no-op
    assert registry.get("thing", ("LSI-0",)) is None
    registry.observe("thing", ("LSI-0",), 2e-6)
    assert registry.get("thing", ("LSI-0",)).total == 1
    with pytest.raises(KeyError):
        registry.observe("unregistered", (), 1.0)
    snapshot = registry.snapshot()
    assert snapshot["thing"]["lsi=LSI-0"]["count"] == 1
    assert registry.to_dict() == snapshot


def test_render_histograms_prometheus_conformance():
    registry = HistogramRegistry()
    registry.register("batch", "Batch latency.", ("lsi",))
    for value in (1e-6, 3e-6, 3e-6, 1.0):
        registry.observe("batch", ("LSI-0",), value)
    text = render_histograms(registry)
    lines = text.splitlines()
    assert "# HELP repro_batch_seconds Batch latency." in lines
    assert "# TYPE repro_batch_seconds histogram" in lines
    buckets = [line for line in lines
               if line.startswith("repro_batch_seconds_bucket{")]
    # Cumulative and non-decreasing, ending at the +Inf bucket == count.
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)
    assert buckets[-1].startswith(
        'repro_batch_seconds_bucket{lsi="LSI-0",le="+Inf"}')
    assert counts[-1] == 4
    assert 'repro_batch_seconds_count{lsi="LSI-0"} 4' in lines
    sum_line = next(line for line in lines
                    if line.startswith('repro_batch_seconds_sum{'))
    assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(1.000007)


def test_render_histograms_escapes_label_values():
    registry = HistogramRegistry()
    registry.register("odd", "Odd labels.", ("route",))
    registry.observe("odd", ('pa"th\\with\nnasties',), 1e-5)
    text = render_histograms(registry)
    assert 'route="pa\\"th\\\\with\\nnasties"' in text
    assert "\npa" not in text  # the raw newline never reaches the wire


# -- flight recorder ----------------------------------------------------------------

def test_flight_recorder_rings_are_bounded():
    tracer = Tracer(sample_every=1, flight_spans=4, max_dumps=2)
    for index in range(10):
        span = tracer.start_span("s", index=index)
        tracer.end_span(span)
    recent = tracer.flight.recent_spans()
    assert len(recent) == 4
    assert [span["attrs"]["index"] for span in recent] == [6, 7, 8, 9]
    assert tracer.flight.recorded == 10
    for index in range(3):
        tracer.freeze("manual", detail=f"f{index}")
    dumps = tracer.flight.dump_list()
    assert len(dumps) == 2  # ring of dumps, oldest evicted
    assert [d["detail"] for d in dumps] == ["f1", "f2"]
    with pytest.raises(ValueError):
        FlightRecorder(span_capacity=0)


def test_anomaly_cooldown_counts_all_freezes_once():
    tracer = Tracer(anomaly_cooldown=3600.0)
    first = tracer.anomaly("slow-tick", detail="a")
    second = tracer.anomaly("slow-tick", detail="b")
    assert first is not None and second is None  # cooldown ate the 2nd
    assert tracer.anomalies["slow-tick"] == 2   # but both were counted
    assert tracer.flight.frozen == 1
    # A different reason has its own cooldown window.
    assert tracer.anomaly("journal-drop") is not None


# -- the 1-in-N sampler -------------------------------------------------------------

def test_sampler_fires_every_nth_batch():
    node, _ = make_node()
    node.deploy(dpi_graph())
    tracer = node.tracer
    tracer.sample_every = 4
    tracer.batch_counter = 0
    for _ in range(8):
        node.steering.inject_batch("lan0", flows(3))
    # Batches also run on the graph LSI when frames take the lookup
    # path, so count only that >= 2 firings happened for 8+ batches.
    assert tracer.sampled_batches >= 2
    names = {span["name"] for span in tracer.flight.recent_spans()}
    assert "batch" in names
    assert "dispatch" in names or "lookup" in names


def test_unsampled_batches_record_nothing():
    node, _ = make_node()
    node.deploy(dpi_graph())
    tracer = node.tracer
    assert tracer.sample_every == 64
    recorded_after_deploy = tracer.flight.recorded  # reconcile spans
    for _ in range(10):
        node.steering.inject_batch("lan0", flows(2))
    assert tracer.sampled_batches == 0
    assert tracer.flight.recorded == recorded_after_deploy
    assert tracer.batch_counter > 0  # the counter did advance


# -- deterministic span trees -------------------------------------------------------

def _normalized_tree(tracer):
    """Spans minus wall clocks and the globally-counted flow entry id."""
    out = []
    for span in tracer.flight.recent_spans():
        span = dict(span)
        span.pop("wall-start", None)
        span.pop("wall-end", None)
        attrs = dict(span.get("attrs") or {})
        attrs.pop("entry", None)
        span["attrs"] = attrs
        out.append(span)
    return out


def _run_traced_chain4():
    node, _ = make_node()
    tracer = Tracer(sample_every=1, clock=lambda: 42.0)
    node.steering.set_tracer(tracer)
    node.deploy(chain4_graph())
    for _ in range(3):
        node.steering.inject_batch("lan0", flows(6, frames_per_flow=2))
    return tracer


def test_sim_clock_span_trees_are_deterministic():
    first = _run_traced_chain4()
    second = _run_traced_chain4()
    tree_a = _normalized_tree(first)
    tree_b = _normalized_tree(second)
    assert tree_a, "sampled chain-4 batches recorded no spans"
    assert tree_a == tree_b
    # The tree contains the full batch anatomy: root, dispatch/lookup,
    # fused chain with per-hop children, egress.
    names = [span["name"] for span in tree_a]
    assert "batch" in names and "hop" in names and "chain" in names
    hop_spans = [span for span in tree_a if span["name"] == "hop"]
    chain_spans = [span for span in tree_a if span["name"] == "chain"]
    parent_ids = {span["span-id"] for span in chain_spans}
    assert all(span["parent-id"] in parent_ids for span in hop_spans)
    assert all(span["sim-start"] == 42.0 for span in tree_a)
    # Per-LSI latency histograms populated for the batch + hops.
    assert first.histograms.get("dataplane_batch", ("LSI-0",)) is not None
    assert any(first.histograms.get("chain_hop", (lsi,)) is not None
               for lsi in ("LSI-0", "LSI-c4"))


# -- anomaly triggers ---------------------------------------------------------------

def test_induced_heal_freezes_flight_dump_correlated_with_journal():
    node, driver = make_node(restartable=False)
    node.deploy(dpi_graph())
    tracer = node.tracer
    tracer.sample_every = 1
    node.steering.inject_batch("lan0", flows(4))
    driver.sick.add("trg-dpi")
    node.orchestrator.reconcile("trg")  # restart fails -> recreate
    assert tracer.anomalies.get("heal", 0) >= 1
    dumps = tracer.flight.dump_list()
    heal_dumps = [d for d in dumps if d["reason"] == "heal"]
    assert heal_dumps, f"no heal dump frozen (got {dumps})"
    dump = heal_dumps[-1]
    events = node.orchestrator.reconciler.journal.events("trg")
    seqs = {event.seq: event for event in events}
    # The trigger seq is the journal's healed event.
    assert dump["seq"] in seqs
    assert seqs[dump["seq"]].kind == "healed"
    # And the frozen spans correlate with journal entries by seq too:
    # reconcile plan/step spans carry the seq of the event they logged.
    span_seqs = [span["seq"] for span in dump["spans"]
                 if span.get("seq") is not None]
    assert span_seqs
    assert any(seq in seqs for seq in span_seqs)
    # The dump carries the histogram state at freeze time.
    assert "reconcile_step" in dump["histograms"]


def test_reconcile_spans_and_histograms_cover_plan_and_steps():
    node, _ = make_node()
    tracer = node.tracer
    node.deploy(dpi_graph())
    names = [span["name"] for span in tracer.flight.recent_spans()]
    assert "reconcile.plan" in names
    assert any(name.startswith("step.") for name in names)
    assert tracer.histograms.get("reconcile_plan", ()) is not None
    kinds = [values for values
             in tracer.histograms._families["reconcile_step"]["series"]]
    assert kinds, "no reconcile_step series observed"


def test_journal_ring_eviction_triggers_journal_drop_anomaly():
    node, _ = make_node()
    tracer = node.tracer
    journal = EventJournal(max_events=3)
    journal.on_drop = tracer.on_journal_drop
    node.orchestrator.reconciler.journal = journal
    node.telemetry.reconciler = node.orchestrator.reconciler
    node.deploy(dpi_graph())
    for _ in range(3):
        node.orchestrator.reconcile("trg")
    assert tracer.anomalies.get("journal-drop", 0) >= 1
    dumps = [d for d in tracer.flight.dump_list()
             if d["reason"] == "journal-drop"]
    assert dumps
    assert dumps[0]["graph-id"] == "trg"


def test_invalidation_storm_trigger():
    tracer = Tracer(storm_threshold=3, storm_window=60.0)
    tracer.note_invalidation("LSI-0")
    tracer.note_invalidation("LSI-0")
    assert "invalidation-storm" not in tracer.anomalies
    tracer.note_invalidation("LSI-0")
    assert tracer.anomalies["invalidation-storm"] == 1
    dump = tracer.flight.dump_list()[-1]
    assert dump["reason"] == "invalidation-storm"
    assert "3 fusion" in dump["detail"]
    # The deque was cleared: the next burst needs 3 fresh drops again.
    tracer.note_invalidation("LSI-0")
    assert tracer.anomalies["invalidation-storm"] == 1


def test_live_program_invalidation_feeds_the_storm_detector():
    """A flow-mod that drops live fused programs must reach
    ``note_invalidation``; deploy-time invalidates (nothing cached)
    must not."""
    node, _ = make_node()
    tracer = Tracer(sample_every=64, storm_threshold=1, storm_window=60.0)
    node.steering.set_tracer(tracer)
    node.deploy(dpi_graph())
    assert "invalidation-storm" not in tracer.anomalies  # deploy is quiet
    node.steering.inject_batch("lan0", flows(6))  # fuse the chain
    node.undeploy("trg")  # tears down rules under live programs
    assert tracer.anomalies.get("invalidation-storm", 0) >= 1


def test_slow_tick_anomaly_and_tick_histogram():
    tracer = Tracer(slow_tick_threshold=0.25, clock=lambda: 5.0)
    tracer.observe_tick(0.01, graphs=2)
    assert "slow-tick" not in tracer.anomalies
    tracer.observe_tick(0.9, graphs=2)
    assert tracer.anomalies["slow-tick"] == 1
    dump = tracer.flight.dump_list()[-1]
    assert "0.9" in dump["detail"]
    assert dump["sim"] == 5.0
    histogram = tracer.histograms.get("control_tick", ())
    assert histogram.total == 2
    # Every tick also pushed a histogram snapshot onto the flight ring.
    assert len(dump["snapshots"]) == 2


def test_control_loop_ticks_feed_the_tracer():
    node, _ = make_node()
    sim = Simulator()
    loop = ControlLoop(node.orchestrator, node.telemetry, interval=1.0)
    loop.run_sim(sim)
    node.deploy(dpi_graph())
    sim.run(until=5.0)
    histogram = node.tracer.histograms.get("control_tick", ())
    assert histogram is not None and histogram.total >= 4


# -- REST + JSON surface ------------------------------------------------------------

def test_rest_traces_and_flight_endpoints():
    node, _ = make_node()
    node.tracer.sample_every = 1
    node.deploy(dpi_graph())
    node.steering.inject_batch("lan0", flows(5))
    node.tracer.freeze("manual", detail="surface test")
    client = RestClient(RestApp(node))
    traces = client.traces()
    assert traces["sample-every"] == 1
    assert traces["sampled-batches"] >= 1
    assert traces["spans"], "no spans over /traces"
    flight = client.flight_dumps()
    assert flight["flight-freezes"] >= 1
    assert any(d["reason"] == "manual" for d in flight["dumps"])
    json.dumps(traces), json.dumps(flight)  # wire-clean


def test_rest_traces_404_without_tracer():
    node, _ = make_node()
    node.tracer = None
    app = RestApp(node)
    assert app.handle("GET", "/traces").status == 404
    assert app.handle("GET", "/traces/flight").status == 404


def test_metrics_expose_histogram_blocks_and_tracing_stats():
    node, _ = make_node()
    node.tracer.sample_every = 1
    node.deploy(dpi_graph())
    node.steering.inject_batch("lan0", flows(6))
    client = RestClient(RestApp(node))
    text = client.prometheus_metrics()
    assert "# TYPE repro_dataplane_batch_seconds histogram" in text
    assert 'repro_dataplane_batch_seconds_bucket{lsi="LSI-0",le="+Inf"}' \
        in text
    assert "repro_rest_dispatch_seconds" in text  # family header present
    document = client.node_metrics()
    assert document["tracing"]["sampled-batches"] >= 1
    assert "dataplane_batch" in document["histograms"]
    batch_series = document["histograms"]["dataplane_batch"]
    assert any(snapshot["count"] >= 1
               for snapshot in batch_series.values())


def test_rest_dispatch_histogram_labels_by_route_pattern():
    node, _ = make_node()
    node.deploy(dpi_graph())
    client = RestClient(RestApp(node))
    client.graph_status("trg")
    client.node_description()
    series = node.tracer.histograms._families["rest_dispatch"]["series"]
    routes = {values[1] for values in series}
    # The label is the route *pattern*, not the concrete path — bounded
    # cardinality no matter how many graphs exist.
    assert any("{graph_id}" in route or "{" in route for route in routes)
    assert "trg" not in "".join(routes)


# -- CLI ----------------------------------------------------------------------------

@pytest.fixture
def served_traced_node():
    from repro.rest.server import NodeHttpServer

    node, _ = make_node()
    node.tracer.sample_every = 1
    server = NodeHttpServer(node, port=0).start()
    node.deploy(dpi_graph())
    node.steering.inject_batch("lan0", flows(4))
    try:
        yield node, server
    finally:
        server.stop()


def test_cli_trace_prints_span_tree(served_traced_node, capsys):
    from repro.cli.main import main

    node, server = served_traced_node
    assert main(["trace", "--url", server.url]) == 0
    out = capsys.readouterr().out
    assert "sampling 1/1" in out
    assert "batch" in out
    assert "ms" in out  # durations rendered


def test_cli_trace_flight_prints_dumps(served_traced_node, capsys):
    from repro.cli.main import main

    node, server = served_traced_node
    assert main(["trace", "--flight", "--url", server.url]) == 0
    assert "(no flight-recorder dumps frozen)" in capsys.readouterr().out
    node.tracer.freeze("manual", detail="cli probe")
    assert main(["trace", "--flight", "--url", server.url]) == 0
    out = capsys.readouterr().out
    assert "dump: reason='manual'" in out
    assert "cli probe" in out


def test_watch_top_backs_off_while_node_unreachable():
    from repro.cli.main import NodeUnreachable, watch_top

    node, _ = make_node()
    node.deploy(dpi_graph())
    node.telemetry.sample(now=0.0)
    document = node.telemetry.to_dict()

    replies = [NodeUnreachable("cannot reach http://x (down)"),
               NodeUnreachable("cannot reach http://x (down)"),
               document, document]
    delays, screens = [], []

    def fetch(method, url, timeout):
        reply = replies.pop(0)
        if isinstance(reply, Exception):
            raise reply
        return reply

    assert watch_top("http://x", interval=1.0, timeout=5.0,
                     iterations=4, fetch=fetch,
                     sleep=delays.append, out=screens.append) == 0
    # Exponential backoff while down, reset to the cadence on recovery.
    assert delays == [2.0, 4.0, 1.0, 1.0]
    assert "(no data yet)" in screens[0]
    assert "[stale]" in screens[0] and "[stale]" in screens[1]
    assert "retrying in 4s" in screens[1]
    assert "GRAPH" in screens[2] and "[stale]" not in screens[2]


def test_watch_top_keeps_last_good_table_during_outage():
    from repro.cli.main import NodeUnreachable, watch_top

    node, _ = make_node()
    node.deploy(dpi_graph())
    node.telemetry.sample(now=0.0)
    document = node.telemetry.to_dict()

    replies = [document, NodeUnreachable("cannot reach http://x (down)")]
    screens = []

    def fetch(method, url, timeout):
        reply = replies.pop(0)
        if isinstance(reply, Exception):
            raise reply
        return reply

    watch_top("http://x", interval=1.0, timeout=5.0, iterations=2,
              fetch=fetch, sleep=lambda _s: None, out=screens.append)
    # The stale screen still shows the last good table, plus the banner.
    assert "GRAPH" in screens[1]
    assert "[stale]" in screens[1]


def test_watch_top_backoff_caps():
    from repro.cli.main import _WATCH_BACKOFF_CAP, NodeUnreachable, \
        watch_top

    delays = []

    def fetch(method, url, timeout):
        raise NodeUnreachable("down")

    watch_top("http://x", interval=1.0, timeout=5.0, iterations=8,
              fetch=fetch, sleep=delays.append, out=lambda _s: None)
    assert delays[-1] == _WATCH_BACKOFF_CAP
    assert max(delays) == _WATCH_BACKOFF_CAP
