"""Consistent-hash steering + per-flow state tables.

Three layers of coverage:

* unit tests on :class:`repro.switch.state.FlowStateTable` — pin,
  remap, adoption, aging and eviction, all on a hand-driven clock;
* Hypothesis properties on :func:`repro.switch.actions
  .rendezvous_select` — the *exact* minimal-disruption contract: on a
  port add only flows the new port wins move, on a remove only flows
  the removed port owned move, and a seeded-population fraction bound
  of ``1/min(N_from, N_to)`` (+ sampling slack) per step;
* a subprocess determinism check — selections must be identical under
  different ``PYTHONHASHSEED`` values, i.e. nothing in the steering
  path leaks Python's randomized ``hash()``.
"""

import subprocess
import sys
import textwrap

from hypothesis import given, settings, strategies as st

from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.net.builder import make_tcp_frame
from repro.net.ethernet import EthernetFrame
from repro.switch import flow_key, rendezvous_select
from repro.switch.actions import flow_hash
from repro.switch.state import FlowStateRegistry, FlowStateTable

SRC = MacAddress("02:aa:00:00:00:01")
DST = MacAddress("02:bb:00:00:00:02")


def _udp(flow: int, payload: bytes = b"x"):
    return parse_frame(make_udp_frame(
        SRC, DST, f"10.1.{flow % 250}.{flow // 250}", "10.2.0.1",
        3000 + flow, 53, payload))


def _tcp(flow: int, flags: int):
    return parse_frame(make_tcp_frame(
        SRC, DST, f"10.3.{flow % 250}.1", "10.4.0.1",
        4000 + flow, 80, b"p" if flags & 0x10 else b"", flags=flags))


def _l2(index: int, payload: bytes = b"\x00" * 28):
    return parse_frame(EthernetFrame(
        dst=DST, src=MacAddress(f"02:cc:00:00:00:{index:02x}"),
        ethertype=0x0806, payload=payload))


class Clock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# -- state table unit tests ---------------------------------------------------------

def test_first_sight_inserts_then_pins():
    clock = Clock()
    table = FlowStateTable(clock=clock)
    ports = (10, 11, 12)
    parsed = _udp(1)
    first = table.steer(parsed, ports, frozenset(ports))
    assert first == rendezvous_select(ports, flow_hash(parsed))
    assert table.inserted == 1 and table.pinned == 0
    for _ in range(5):
        assert table.steer(parsed, ports, frozenset(ports)) == first
    assert table.pinned == 5 and table.churned == 0
    assert table.owner(parsed) == first


def test_owner_departure_remaps_to_live_replica():
    clock = Clock()
    table = FlowStateTable(clock=clock)
    ports = (10, 11, 12)
    flows = [_udp(flow) for flow in range(48)]
    owners = {flow_key(p): table.steer(p, ports, frozenset(ports))
              for p in flows}
    gone = 10
    survivors = tuple(p for p in ports if p != gone)
    for parsed in flows:
        port = table.steer(parsed, survivors, frozenset(survivors))
        if owners[flow_key(parsed)] == gone:
            assert port in survivors
        else:
            # Minimal disruption: flows the departed replica did not
            # own stay exactly where they were.
            assert port == owners[flow_key(parsed)]
    moved = sum(1 for owner in owners.values() if owner == gone)
    assert table.remapped == moved == table.churned
    assert moved > 0


def test_idle_entries_expire_and_count_churn():
    clock = Clock()
    table = FlowStateTable(idle_timeout=30.0, clock=clock)
    parsed = _udp(2)
    table.steer(parsed, (10,), frozenset((10,)))
    clock.now = 31.0
    # Aged out; the fresh choice lands on a different port -> churned.
    port = table.steer(parsed, (11,), frozenset((11,)))
    assert port == 11
    assert table.expired == 1 and table.churned == 1
    assert len(table) == 1


def test_established_flows_adopt_the_default_owner():
    table = FlowStateTable(clock=Clock())
    table.default_owner = 10
    ports = (10, 11, 12)
    # Mid-connection ACK, never seen: its state predates the spread.
    established = _tcp(1, 0x10)
    assert table.steer(established, ports, frozenset(ports)) == 10
    assert table.adopted == 1
    # A SYN is a brand-new connection: load-balanced, not adopted.
    fresh = [_tcp(flow, 0x02) for flow in range(32)]
    spread = {table.steer(p, ports, frozenset(ports)) for p in fresh}
    assert len(spread) > 1
    assert table.adopted == 1
    # Adoption only targets live ports: owner gone -> rendezvous.
    table2 = FlowStateTable(clock=Clock())
    table2.default_owner = 99
    parsed = _tcp(2, 0x10)
    assert table2.steer(parsed, ports, frozenset(ports)) in ports
    assert table2.adopted == 0


def test_capacity_evicts_least_recently_seen():
    clock = Clock()
    table = FlowStateTable(capacity=2, clock=clock)
    ports = (10, 11)
    oldest, middle, newest = _udp(1), _udp(2), _udp(3)
    table.steer(oldest, ports, frozenset(ports))
    clock.now = 1.0
    table.steer(middle, ports, frozenset(ports))
    clock.now = 2.0
    table.steer(newest, ports, frozenset(ports))
    assert len(table) == 2 and table.evicted == 1
    assert table.owner(oldest) is None
    assert table.owner(middle) is not None


def test_registry_tables_share_a_rebindable_clock():
    registry = FlowStateRegistry(name="dp0", idle_timeout=10.0)
    table = registry.table("g/a:1")
    clock = Clock()
    registry.clock = clock  # rebind *after* table creation
    parsed = _udp(4)
    table.steer(parsed, (10,), frozenset((10,)))
    clock.now = 11.0
    assert registry.expire() == 1
    assert registry.table("g/a:1") is table  # get-or-create is stable
    assert registry.stats()["expired"] == 1
    assert registry.drop("g/a:1") and not registry.drop("g/a:1")


def test_l2_frames_have_stable_keys_and_steering():
    """Satellite regression: non-IP frames never raise, keep payload-
    independent keys, and hold replica affinity like any other flow."""
    table = FlowStateTable(clock=Clock())
    ports = (10, 11, 12)
    first = table.steer(_l2(1), ports, frozenset(ports))
    again = table.steer(_l2(1, payload=b"\xff" * 28), ports,
                        frozenset(ports))
    assert first == again and table.pinned == 1
    assert flow_key(_l2(1)) == flow_key(_l2(1, payload=b"\x01" * 28))
    assert flow_key(_l2(1)) != flow_key(_l2(2))
    spread = {table.steer(_l2(i), ports, frozenset(ports))
              for i in range(24)}
    assert len(spread) > 1


# -- rendezvous minimal-disruption properties ---------------------------------------

ports_strategy = st.lists(st.integers(min_value=1, max_value=4000),
                          min_size=1, max_size=8, unique=True)
flows_strategy = st.lists(st.integers(min_value=0,
                                      max_value=(1 << 32) - 1),
                          min_size=1, max_size=200)


@given(ports=ports_strategy, flows=flows_strategy,
       new_port=st.integers(min_value=4001, max_value=5000))
@settings(max_examples=100, deadline=None)
def test_adding_a_replica_moves_exactly_the_flows_it_wins(
        ports, flows, new_port):
    before = tuple(ports)
    after = tuple(ports) + (new_port,)
    for flow in flows:
        old = rendezvous_select(before, flow)
        new = rendezvous_select(after, flow)
        # A flow either stays put or moves to the *added* port — no
        # collateral reshuffling between surviving replicas, ever.
        assert new == old or new == new_port


@given(ports=st.lists(st.integers(min_value=1, max_value=5000),
                      min_size=2, max_size=8, unique=True),
       flows=flows_strategy, data=st.data())
@settings(max_examples=100, deadline=None)
def test_removing_a_replica_moves_exactly_the_flows_it_owned(
        ports, flows, data):
    before = tuple(ports)
    gone = data.draw(st.sampled_from(before))
    after = tuple(p for p in before if p != gone)
    for flow in flows:
        old = rendezvous_select(before, flow)
        new = rendezvous_select(after, flow)
        if old == gone:
            assert new in after
        else:
            assert new == old


def test_remap_fraction_stays_under_the_bound():
    """Seeded-population fraction bound, every ladder step 1..6 and
    back: moved/flows <= 1/min(N_from, N_to) + 5% slack (expectation
    is 1/max(N_from, N_to); the bound has margin by construction)."""
    import random
    rng = random.Random(41)
    flows = [rng.randrange(1 << 32) for _ in range(8000)]
    ports = tuple(100 + i for i in range(6))
    ladder = [ports[:n] for n in range(1, 7)]
    ladder += list(reversed(ladder[:-1]))
    owners = [rendezvous_select(ladder[0], flow) for flow in flows]
    for index, live in enumerate(ladder[1:]):
        new_owners = [rendezvous_select(live, flow) for flow in flows]
        moved = sum(1 for old, new in zip(owners, new_owners)
                    if old != new)
        bound = 1.0 / min(len(ladder[index]), len(live))
        assert moved / len(flows) <= bound + 0.05, (
            f"{len(ladder[index])} -> {len(live)}: "
            f"{moved}/{len(flows)} moved")
        owners = new_owners


def test_ties_break_deterministically():
    # Same flow, same ports, any ordering: one winner.
    flow = 0xDEADBEEF
    ports = (7, 3, 11, 5)
    winner = rendezvous_select(ports, flow)
    assert rendezvous_select(tuple(reversed(ports)), flow) == winner
    assert rendezvous_select((3, 5, 7, 11), flow) == winner


# -- process-restart determinism ----------------------------------------------------

_DETERMINISM_SNIPPET = textwrap.dedent("""
    from repro.net import MacAddress, make_udp_frame, parse_frame
    from repro.net.ethernet import EthernetFrame
    from repro.switch import flow_key, rendezvous_select
    from repro.switch.actions import flow_hash

    src = MacAddress("02:aa:00:00:00:01")
    dst = MacAddress("02:bb:00:00:00:02")
    ports = (11, 22, 33, 44)
    out = []
    for flow in range(128):
        parsed = parse_frame(make_udp_frame(
            src, dst, f"10.1.{flow}.1", "10.2.0.1",
            3000 + flow, 53, b"x"))
        out.append((flow_hash(parsed),
                    rendezvous_select(ports, flow_hash(parsed)),
                    flow_key(parsed)))
    for index in range(32):
        parsed = parse_frame(EthernetFrame(
            dst=dst, src=MacAddress(f"02:cc:00:00:00:{index:02x}"),
            ethertype=0x0806, payload=b"\\x00" * 28))
        out.append((flow_hash(parsed),
                    rendezvous_select(ports, flow_hash(parsed)),
                    flow_key(parsed)))
    print(repr(out))
""")


def _run_snippet(hashseed: str) -> str:
    import os
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", os.environ.get("PYTHONPATH")]))
    result = subprocess.run(
        [sys.executable, "-c", _DETERMINISM_SNIPPET], env=env,
        capture_output=True, text=True, timeout=120, check=True)
    return result.stdout


def test_steering_survives_process_restarts():
    """Different ``PYTHONHASHSEED`` processes must agree on every
    hash, selection and key: replica affinity survives a node restart
    only if nothing leaks the interpreter's randomized ``hash()``."""
    first = _run_snippet("0")
    second = _run_snippet("1")
    assert first == second
    assert first.strip()  # the snippet actually produced selections


# -- flow_hash edge cases -----------------------------------------------------------

def test_flow_hash_is_16_bit_and_never_raises():
    frames = [_udp(1), _tcp(1, 0x02), _l2(1),
              parse_frame(EthernetFrame(dst=DST, src=SRC,
                                        ethertype=0x88CC, payload=b""))]
    for parsed in frames:
        value = flow_hash(parsed)
        assert 0 <= value <= 0xFFFF


def test_flow_key_is_exact_not_hashed():
    # Distinct 5-tuples that could collide in a 16-bit hash must still
    # have distinct keys (the state table matches exactly).
    keys = {flow_key(_udp(flow)) for flow in range(512)}
    assert len(keys) == 512
    tcp_key = flow_key(_tcp(1, 0x02))
    assert flow_key(_tcp(1, 0x10)) == tcp_key  # flags don't change it
