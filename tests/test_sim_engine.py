"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Event, Interrupt, Simulator, Timeout
from repro.sim.engine import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).callbacks.append(
            lambda ev, d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for tag in ("a", "b", "c"):
        sim.timeout(1.0).callbacks.append(
            lambda ev, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_bound_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.timeout(5.0).callbacks.append(lambda ev: fired.append(5.0))
    sim.timeout(1.0).callbacks.append(lambda ev: fired.append(1.0))
    sim.run(until=2.0)
    assert fired == [1.0]
    assert sim.now == 2.0


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=0.5)


def test_process_sleeps_and_resumes():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(("start", sim.now))
        yield sim.timeout(1.5)
        trace.append(("middle", sim.now))
        yield sim.timeout(0.5)
        trace.append(("end", sim.now))

    sim.process(worker())
    sim.run()
    assert trace == [("start", 0.0), ("middle", 1.5), ("end", 2.0)]


def test_process_return_value_via_event():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return 42

    process = sim.process(worker())
    sim.run()
    assert process.fired
    assert process.value == 42


def test_process_waits_on_another_process():
    sim = Simulator()
    trace = []

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        result = yield sim.process(child())
        trace.append((result, sim.now))

    sim.process(parent())
    sim.run()
    assert trace == [("done", 2.0)]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    got = []

    def waiter():
        value = yield gate
        got.append(value)

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert got == ["open"]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_interrupt_delivers_cause():
    sim = Simulator()
    caught = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((interrupt.cause, sim.now))

    def interrupter(target):
        yield sim.timeout(1.0)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert caught == [("wake up", 1.0)]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    process = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def waiter():
        first = sim.timeout(1.0, value="fast")
        second = sim.timeout(5.0, value="slow")
        done = yield sim.any_of([first, second])
        results.append(list(done.values()))

    sim.process(waiter())
    sim.run()
    assert results == [["fast"]]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    at = []

    def waiter():
        yield sim.all_of([sim.timeout(1.0), sim.timeout(4.0)])
        at.append(sim.now)

    sim.process(waiter())
    sim.run()
    assert at == [4.0]


def test_run_until_fired_detects_starvation():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError):
        sim.run_until_fired(never)


def test_yielding_already_fired_event_resumes():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    got = []

    def waiter():
        value = yield done
        got.append(value)

    sim.process(waiter())
    sim.run()
    assert got == ["early"]


def test_stop_aborts_run():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).callbacks.append(lambda ev: sim.stop())
    sim.timeout(2.0).callbacks.append(lambda ev: fired.append(2.0))
    sim.run()
    assert fired == []
    assert sim.now == 1.0
    sim.run()
    assert fired == [2.0]
