"""Elastic scaling: hash-LB affinity, autoscaler hysteresis, full loop.

The acceptance scenario (deterministic, sim-engine driven): overload a
chain NF -> the autoscaler raises desired replicas -> the reconciler
converges -> hash-LB steering splits traffic with per-flow affinity ->
load drops -> cooldown-paced scale-in drains the replicas away.  Plus
the fleet-level heal escalation satellite: a node whose heals keep
failing gets its graph re-placed without ``mark_node_down``.
"""

import pytest

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError, Health
from repro.core import ComputeNode
from repro.core.multinode import MultiNodeOrchestrator
from repro.net import MacAddress, make_udp_frame
from repro.nffg.model import Nffg
from repro.nffg.replicas import expand_replicas, replica_base
from repro.resources.capabilities import NodeCapabilities
from repro.sim.engine import Simulator
from repro.switch import Datapath, FlowEntry, FlowMatch, Output, PushVlan, \
    SelectOutput, flow_hash
from repro.telemetry import Autoscaler, ControlLoop, ScalingPolicy
from repro.net.builder import parse_frame

SRC = MacAddress("02:ab:00:00:00:01")
DST = MacAddress("02:ab:00:00:00:02")


def make_node(name="elastic-test"):
    node = ComputeNode(name,
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def dpi_graph(replicas=1, graph_id="eg"):
    graph = Nffg(graph_id=graph_id, name="elastic graph")
    graph.add_nf("dpi", "dpi", technology="docker", replicas=replicas)
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:dpi:in")
    graph.add_flow_rule("r2", "vnf:dpi:out", "endpoint:wan")
    return graph


def flow_frames(flow, count):
    """``count`` identical-5-tuple frames for flow index ``flow``."""
    return [make_udp_frame(SRC, DST, f"10.2.{flow % 9}.{flow % 29}",
                           "10.3.0.1", 6000 + flow, 53,
                           bytes([flow % 251]) * (20 + flow % 40))
            for _ in range(count)]


def capture_nf_ingress(node, graph_id):
    """nf_id -> list of raw frame bytes delivered into that NF.

    Replaces the inner (namespace-side) veth handler of every NF port
    with a recorder — byte-exact observation of what each replica's
    guest would have received.
    """
    captured = {}
    record = node.orchestrator.deployed[graph_id]
    for nf_id, instance in record.instances.items():
        sink = captured.setdefault(nf_id, [])
        for device in instance.unique_switch_devices():
            inner = device.peer
            inner.detach_handler()
            inner.attach_handler(
                lambda dev, frame, s=sink: s.append(frame.to_bytes()),
                batch_handler=lambda dev, frames, s=sink:
                    s.extend(frame.to_bytes() for frame in frames))
    return captured


# -- replica expansion -------------------------------------------------------------

def test_expansion_keeps_replica_zero_and_marks_lb_rules():
    graph = dpi_graph(replicas=3)
    expanded = expand_replicas(graph)
    assert [spec.nf_id for spec in expanded.nfs] == ["dpi", "dpi@1",
                                                     "dpi@2"]
    assert all(spec.replicas == 1 for spec in expanded.nfs)
    rule_ids = [rule.rule_id for rule in expanded.flow_rules]
    assert rule_ids == ["r1@lb3", "r2", "r2@1", "r2@2"]
    lb = expanded.flow_rules[0]
    assert lb.output.element == "dpi"  # base id: steering resolves group
    assert expanded.flow_rules[2].match.port_in.element == "dpi@1"
    # replicas=1 everywhere -> identity (same ids, same rules)
    plain = expand_replicas(dpi_graph(replicas=1))
    assert [s.nf_id for s in plain.nfs] == ["dpi"]
    assert [r.rule_id for r in plain.flow_rules] == ["r1", "r2"]


def test_replica_namespace_is_reserved():
    from repro.nffg.validate import NffgValidationError, validate_nffg
    graph = dpi_graph()
    graph.add_nf("bad@1", "dpi", technology="docker")
    graph.add_flow_rule("r3", "vnf:bad@1:out", "endpoint:wan")
    with pytest.raises(NffgValidationError, match="reserved"):
        validate_nffg(graph)


# -- hash-LB flow affinity ----------------------------------------------------------

def test_flow_hash_is_deterministic_and_spreads():
    frames = [parse_frame(flow_frames(flow, 1)[0]) for flow in range(64)]
    hashes = [flow_hash(parsed) for parsed in frames]
    assert hashes == [flow_hash(parse_frame(flow_frames(flow, 1)[0]))
                      for flow in range(64)]
    buckets = {h % 3 for h in hashes}
    assert buckets == {0, 1, 2}  # 64 distinct flows hit every replica
    # Non-IP frames hash their L2 conversation: stable per (src, dst,
    # ethertype), never raising, and distinct conversations spread
    # instead of all collapsing onto one replica (the old behavior
    # hashed every ARP to 0).
    from repro.net.addresses import MacAddress
    from repro.net.ethernet import EthernetFrame
    arp = parse_frame(EthernetFrame(dst=DST, src=SRC, ethertype=0x0806,
                                    payload=b"\x00" * 28))
    again = parse_frame(EthernetFrame(dst=DST, src=SRC, ethertype=0x0806,
                                      payload=b"\xff" * 28))
    assert flow_hash(arp) == flow_hash(again)  # payload-independent
    l2_hashes = {
        flow_hash(parse_frame(EthernetFrame(
            dst=DST, src=MacAddress(f"02:ab:00:00:01:{i:02x}"),
            ethertype=0x0806, payload=b"\x00" * 28)))
        for i in range(16)}
    assert len(l2_hashes) > 1  # distinct L2 sources spread


def test_every_frame_of_a_flow_hits_the_same_replica():
    node = make_node()
    node.deploy(dpi_graph(replicas=3))
    captured = capture_nf_ingress(node, "eg")
    for flow in range(24):
        before = {nf_id: len(frames) for nf_id, frames
                  in captured.items()}
        node.steering.inject_batch("lan0", flow_frames(flow, 7))
        deltas = {nf_id: len(captured[nf_id]) - before[nf_id]
                  for nf_id in captured}
        hit = [nf_id for nf_id, delta in deltas.items() if delta]
        assert len(hit) == 1, f"flow {flow} split across {hit}"
        assert deltas[hit[0]] == 7
    # The spread used more than one replica overall.
    used = {nf_id for nf_id, frames in captured.items() if frames}
    assert len(used) >= 2


def test_lb_chain_is_byte_for_byte_identical_to_single_replica():
    """Differential: the union of frames the replicas receive equals
    exactly (as a byte multiset) what a single-replica deployment's one
    instance receives — the LB spread reroutes, never rewrites."""
    replicated = make_node("rep")
    replicated.deploy(dpi_graph(replicas=3))
    single = make_node("single")
    single.deploy(dpi_graph(replicas=1))
    cap_replicated = capture_nf_ingress(replicated, "eg")
    cap_single = capture_nf_ingress(single, "eg")
    workload = []
    for flow in range(20):
        workload.extend(flow_frames(flow, 5))
    replicated.steering.inject_batch("lan0", workload)
    single.steering.inject_batch("lan0", workload)
    union = sorted(b for frames in cap_replicated.values()
                   for b in frames)
    baseline = sorted(b for frames in cap_single.values() for b in frames)
    assert len(baseline) == len(workload)
    assert union == baseline


def test_select_output_compiled_matches_interpreted():
    """Differential on the action layer itself: compiled vs interpreted
    SelectOutput pick identical ports for identical frames."""
    for actions in ((SelectOutput((5, 6, 7)),),
                    (PushVlan(9), SelectOutput((5, 6))),):
        dp_compiled = Datapath(0x1, name="c")
        dp_interp = Datapath(0x2, name="i")
        for dp in (dp_compiled, dp_interp):
            for port_no, name in ((1, "in"), (5, "a"), (6, "b"), (7, "c")):
                dp.add_port(name, port_no=port_no)
            dp.install(FlowEntry(match=FlowMatch(in_port=1),
                                 actions=actions))
        dp_interp.compiled_actions = False
        workload = []
        for flow in range(40):
            workload.extend(flow_frames(flow, 2))
        dp_compiled.process_batch_from(1, list(workload))
        for frame in workload:
            dp_interp.process(1, frame)
        for port_no in (5, 6, 7):
            assert dp_compiled.ports[port_no].tx_packets \
                == dp_interp.ports[port_no].tx_packets, f"port {port_no}"


# -- the per-entry emit specialization (pure-output fast path) ----------------------

def test_pure_output_entries_bypass_the_compiled_call():
    entry = FlowEntry(match=FlowMatch(in_port=1), actions=(Output(2),))
    assert entry.fast_out == 2
    tagged = FlowEntry(match=FlowMatch(in_port=1),
                       actions=(PushVlan(5), Output(2)))
    assert tagged.fast_out is None
    dp = Datapath(0x3, name="fast")
    dp.add_port("in", port_no=1)
    dp.add_port("out", port_no=2)
    dp.install(entry)

    def boom(*args, **kwargs):  # the fast path must not run this
        raise AssertionError("compiled program called for pure output")

    entry.compiled = boom
    frames = flow_frames(1, 10)
    dp.process_batch_from(1, list(frames))
    assert dp.ports[2].tx_packets == 10
    # The per-frame path still uses the compiled program.
    entry.compiled = lambda dp_, in_port, frame, emit: emit(2, in_port,
                                                            frame)
    dp.process(1, frames[0])
    assert dp.ports[2].tx_packets == 11


# -- autoscaler hysteresis ----------------------------------------------------------

class StubRegistry:
    """Scriptable stand-in for MetricsRegistry (pps + clock only)."""

    def __init__(self):
        self.pps = {}
        self.t = 0.0

    def now(self):
        return self.t

    def group_pps(self, graph_id, nf_id):
        return self.pps.get((graph_id, nf_id))


def scaling_fixture(**policy_kwargs):
    node = make_node()
    node.deploy(dpi_graph())
    registry = StubRegistry()
    scaler = Autoscaler(node.orchestrator.reconciler, registry)
    defaults = dict(nf_id="dpi", target_pps=100.0, max_replicas=4,
                    cooldown_seconds=5.0)
    defaults.update(policy_kwargs)
    scaler.add_policy("eg", ScalingPolicy(**defaults))
    return node, registry, scaler


def desired_replicas(node):
    return node.orchestrator.reconciler.desired_raw["eg"].nf("dpi").replicas


def test_scale_out_jumps_to_the_needed_count():
    node, registry, scaler = scaling_fixture()
    registry.pps[("eg", "dpi")] = 350.0
    decisions = scaler.evaluate(now=10.0)
    assert [d.to_replicas for d in decisions] == [4]  # ceil(350/100)
    assert desired_replicas(node) == 4


def test_no_flap_at_the_boundary():
    node, registry, scaler = scaling_fixture()
    registry.pps[("eg", "dpi")] = 100.0  # exactly at target: no change
    assert scaler.evaluate(now=1.0) == []
    registry.pps[("eg", "dpi")] = 100.5
    assert [d.to_replicas for d in scaler.evaluate(now=2.0)] == [2]
    # 100.5 pps at 2 replicas: in the hysteresis gap — scale-in needs
    # load under target * 1 * headroom (70), scale-out needs > 200.
    assert scaler.evaluate(now=20.0) == []
    registry.pps[("eg", "dpi")] = 69.0
    assert [d.to_replicas for d in scaler.evaluate(now=40.0)] == [1]


def test_cooldown_rate_limits_changes():
    node, registry, scaler = scaling_fixture(cooldown_seconds=10.0)
    registry.pps[("eg", "dpi")] = 150.0
    assert len(scaler.evaluate(now=0.0)) == 1
    registry.pps[("eg", "dpi")] = 400.0
    assert scaler.evaluate(now=5.0) == []      # still cooling down
    assert len(scaler.evaluate(now=10.0)) == 1  # cooldown expired
    assert desired_replicas(node) == 4


def test_scale_in_steps_one_replica_at_a_time():
    node, registry, scaler = scaling_fixture()
    registry.pps[("eg", "dpi")] = 380.0
    scaler.evaluate(now=0.0)
    assert desired_replicas(node) == 4
    registry.pps[("eg", "dpi")] = 10.0
    scaler.evaluate(now=10.0)
    assert desired_replicas(node) == 3
    scaler.evaluate(now=20.0)
    assert desired_replicas(node) == 2
    assert [d.to_replicas for d in scaler.decisions] == [4, 3, 2]


def test_bounds_are_respected():
    node, registry, scaler = scaling_fixture(max_replicas=2,
                                             min_replicas=1)
    registry.pps[("eg", "dpi")] = 10_000.0
    scaler.evaluate(now=0.0)
    assert desired_replicas(node) == 2
    registry.pps[("eg", "dpi")] = 0.0
    scaler.evaluate(now=100.0)
    assert desired_replicas(node) == 1
    assert scaler.evaluate(now=200.0) == []  # at min already


# -- the full loop (acceptance) -----------------------------------------------------

def test_full_elastic_loop_scales_out_and_back_deterministically():
    node = make_node()
    sim = Simulator()
    scaler = Autoscaler(node.orchestrator.reconciler, node.telemetry)
    scaler.add_policy("eg", ScalingPolicy(
        nf_id="dpi", target_pps=100.0, max_replicas=3,
        cooldown_seconds=2.0))
    loop = ControlLoop(node.orchestrator, node.telemetry,
                       autoscaler=scaler, interval=1.0)
    loop.run_sim(sim)
    node.deploy(dpi_graph())

    def traffic():
        while sim.now < 24.0:
            rate = 300 if sim.now < 9.0 else 30
            frames = []
            for flow in range(30):
                frames.extend(flow_frames(flow, rate // 30))
            node.steering.inject_batch("lan0", frames)
            yield sim.timeout(1.0)

    trace = []

    def watcher():
        while True:
            trace.append((sim.now,
                          node.telemetry.replica_counts("eg").get("dpi",
                                                                  0)))
            yield sim.timeout(1.0)

    sim.process(traffic(), name="traffic")
    sim.process(watcher(), name="watcher")
    sim.run(until=28.0)

    counts = [count for _, count in trace]
    assert max(counts) == 3, f"never scaled out fully: {trace}"
    assert counts[-1] == 1, f"never drained back: {trace}"
    # Deterministic shape: out once (1 -> 3), then cooldown-paced
    # single-step drains (3 -> 2 -> 1).
    assert [(d.from_replicas, d.to_replicas)
            for d in scaler.decisions] == [(1, 3), (3, 2), (2, 1)]
    drain_times = [d.at for d in scaler.decisions[1:]]
    assert drain_times[1] - drain_times[0] >= 2.0  # cooldown respected
    availability = node.telemetry.availability("eg")
    assert availability["time-to-scale-seconds"] is not None
    assert loop.last_error == ""
    # While scaled out, traffic really was hash-split with affinity:
    # every replica carried load at the peak.
    assert node.telemetry.samples_taken >= 25


def test_loop_thread_driver_converges_too():
    node = make_node()
    loop = ControlLoop(node.orchestrator, node.telemetry, interval=0.01)
    node.deploy(dpi_graph())
    loop.start()
    try:
        import time
        deadline = time.monotonic() + 5.0
        while loop.iterations < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
    finally:
        loop.stop()
    assert loop.iterations >= 3
    assert loop.last_error == ""
    with pytest.raises(ValueError):
        ControlLoop(node.orchestrator, node.telemetry, interval=0)


# -- scale-out/in keeps untouched state ---------------------------------------------

def test_scaling_preserves_replica_zero_instance_and_counters():
    node = make_node()
    node.deploy(dpi_graph())
    original = node.orchestrator.deployed["eg"].instances["dpi"]
    node.update(dpi_graph(replicas=3))
    record = node.orchestrator.deployed["eg"]
    assert record.instances["dpi"] is original  # replica 0 untouched
    assert set(record.instances) == {"dpi", "dpi@1", "dpi@2"}
    node.update(dpi_graph(replicas=1))
    record = node.orchestrator.deployed["eg"]
    assert set(record.instances) == {"dpi"}
    assert record.instances["dpi"] is original


def test_replica_heal_reinstalls_the_lb_rule():
    from repro.compute.base import ComputeDriver  # noqa: F401
    node = make_node()
    graph = dpi_graph(replicas=2)
    node.deploy(graph)
    network = node.steering.graph_network("eg")
    assert "r1@lb2" in network.installed
    # Tear the second replica's namespace down behind the driver's back.
    instance = node.orchestrator.deployed["eg"].instances["dpi@1"]
    node.host.delete_namespace(instance.netns)
    result = node.orchestrator.reconcile("eg")
    assert result.converged
    record = node.orchestrator.deployed["eg"]
    assert record.instances["dpi@1"].is_running
    # The LB rule is still installed and spreads over the *new* ports.
    assert "r1@lb2" in network.installed
    captured = capture_nf_ingress(node, "eg")
    for flow in range(16):
        node.steering.inject_batch("lan0", flow_frames(flow, 3))
    assert sum(len(frames) for frames in captured.values()) == 48
    assert all(len(frames) % 3 == 0 for frames in captured.values())


# -- fleet heal escalation ----------------------------------------------------------

class BreakableDriver(ComputeDriver):
    """Healthy until ``broken``; then probes fail and heal verbs fail."""

    technology = Technology.DOCKER
    netns_prefix = "brk"

    def __init__(self, host):
        super().__init__(host)
        self.broken = False

    def create(self, spec):
        if self.broken:
            raise DriverError("injected: node cannot start containers")
        return super().create(spec)

    def restart(self, instance):
        raise DriverError("injected: restart always dies")

    def health(self, instance):
        if self.broken:
            return Health(False, "injected node sickness")
        return super().health(instance)


def test_node_local_heal_escalation_replaces_graph_on_the_fleet():
    fleet = MultiNodeOrchestrator()
    sick = make_node("sick-node")
    healthy = make_node("healthy-node")
    driver = BreakableDriver(sick.host)
    sick.compute._drivers[Technology.DOCKER] = driver
    fleet.add_node(sick)
    fleet.add_node(healthy)
    graph = dpi_graph(graph_id="esc")
    fleet.deploy(graph, node_name="sick-node")
    assert fleet.locate("esc") == "sick-node"

    driver.broken = True
    moved = fleet.reconcile()

    assert moved == ["esc"]
    assert fleet.locate("esc") == "healthy-node"
    assert fleet.escalations_received >= 1
    assert healthy.orchestrator.deployed["esc"].instances["dpi"].is_running
    # Nothing left booked on the sick node, and nobody called
    # mark_node_down: the node is still in rotation.
    assert fleet.node_is_up("sick-node")
    assert "esc" not in sick.orchestrator.deployed
    kinds = [event.kind for event in fleet.journal.events("esc")]
    assert "heal-escalated" in kinds and "re-placed" in kinds
    node_kinds = [event.kind for event in
                  sick.orchestrator.events("esc")]
    assert "heal-escalated" in node_kinds


def test_escalated_replace_survives_a_failing_target_deploy():
    """Deploy-on-target happens before the source copy is torn down:
    a target-side failure must cost nothing and must not abort the
    fleet reconcile."""
    fleet = MultiNodeOrchestrator()
    sick = make_node("sick-node")
    flaky_target = make_node("flaky-target")
    sick_driver = BreakableDriver(sick.host)
    target_driver = BreakableDriver(flaky_target.host)
    sick.compute._drivers[Technology.DOCKER] = sick_driver
    flaky_target.compute._drivers[Technology.DOCKER] = target_driver
    fleet.add_node(sick)
    fleet.add_node(flaky_target)
    fleet.deploy(dpi_graph(graph_id="esc"), node_name="sick-node")
    sick_driver.broken = True
    target_driver.broken = True  # target cannot create containers either

    moved = fleet.reconcile()  # must not raise

    assert moved == []
    assert fleet.locate("esc") == "sick-node"
    # The sick copy was NOT torn down (its instance record survives).
    assert "esc" in sick.orchestrator.deployed
    kinds = [event.kind for event in fleet.journal.events("esc")]
    assert "re-place-failed" in kinds
    # Once the target recovers, the next reconcile completes the move.
    target_driver.broken = False
    assert fleet.reconcile() == ["esc"]
    assert fleet.locate("esc") == "flaky-target"


def test_down_node_rescue_clears_a_standing_escalation():
    """A graph rescued off a dead node must drop its escalation flag —
    the healthy new copy must not be migrated a second time."""
    fleet = MultiNodeOrchestrator()
    sick = make_node("node-a")
    driver = BreakableDriver(sick.host)
    sick.compute._drivers[Technology.DOCKER] = driver
    fleet.add_node(sick)
    fleet.deploy(dpi_graph(graph_id="esc"), node_name="node-a")
    driver.broken = True
    fleet.reconcile()  # escalates; no feasible target yet
    assert "esc" in fleet._escalated

    rescue = make_node("node-c")
    fleet.add_node(rescue)
    fleet.mark_node_down("node-a")
    moved = fleet.reconcile()

    assert moved == ["esc"]
    assert fleet.locate("esc") == "node-c"
    assert "esc" not in fleet._escalated
    original = rescue.orchestrator.deployed["esc"].instances["dpi"]
    fleet.reconcile()  # must not touch the healthy rescued copy
    assert fleet.locate("esc") == "node-c"
    assert rescue.orchestrator.deployed["esc"].instances["dpi"] \
        is original


def test_replicated_graph_replaces_with_raw_graph_fallback():
    """The fleet re-place fallback must use the raw graph it deployed,
    never the replica-expanded record (whose @-ids fail validation)."""
    fleet = MultiNodeOrchestrator()
    node_a = make_node("node-a")
    node_b = make_node("node-b")
    fleet.add_node(node_a)
    fleet.add_node(node_b)
    fleet.deploy(dpi_graph(replicas=2, graph_id="esc"),
                 node_name="node-a")
    # Simulate the node-local desired state being unreachable.
    node_a.orchestrator.reconciler.desired_raw.clear()
    fleet.mark_node_down("node-a")
    assert fleet.reconcile() == ["esc"]
    assert fleet.locate("esc") == "node-b"
    assert set(node_b.orchestrator.deployed["esc"].instances) \
        == {"dpi", "dpi@1"}


def test_escalation_without_feasible_target_keeps_graph_booked():
    fleet = MultiNodeOrchestrator()
    sick = make_node("only-node")
    driver = BreakableDriver(sick.host)
    sick.compute._drivers[Technology.DOCKER] = driver
    fleet.add_node(sick)
    fleet.deploy(dpi_graph(graph_id="esc"), node_name="only-node")
    driver.broken = True
    moved = fleet.reconcile()
    assert moved == []
    assert fleet.locate("esc") == "only-node"
    kinds = [event.kind for event in fleet.journal.events("esc")]
    assert "re-place-failed" in kinds
