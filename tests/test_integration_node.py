"""End-to-end node tests: deploy NF-FGs and push real frames through.

These are the reproduction's core integration tests: they exercise the
full Figure-1 pipeline — REST-less deploy -> placement -> drivers ->
namespaces -> LSIs -> OpenFlow rules — and then verify the dataplane
with actual packets (NAT rewriting, IPsec ESP on the wire, shared-NNF
isolation).
"""

import pytest

from repro.catalog.templates import Technology
from repro.core import ComputeNode
from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.nffg.model import Nffg

CLIENT_MAC = MacAddress("02:aa:00:00:00:01")
SERVER_MAC = MacAddress("02:aa:00:00:00:02")


def nat_graph(graph_id="g-nat", lan_ep="lan0", wan_ep="wan0",
              technology=None, lan_cidr="192.168.1.0/24",
              lan_addr="192.168.1.1/24", wan_addr="203.0.113.2/24",
              nat_pool="203.0.113.0/24"):
    graph = Nffg(graph_id=graph_id, name="home NAT")
    graph.add_nf("nat1", "nat", technology=technology, config={
        "lan.address": lan_addr,
        "wan.address": wan_addr,
        "gateway": wan_addr.split("/")[0].rsplit(".", 1)[0] + ".1",
    })
    graph.add_endpoint("lan", lan_ep)
    graph.add_endpoint("wan", wan_ep)
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst=nat_pool)
    return graph


@pytest.fixture
def node():
    node = ComputeNode("cpe-test")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def sniff(wire):
    frames = []
    wire.attach_handler(lambda dev, frame: frames.append(frame))
    return frames


def test_deploy_nat_prefers_native(node):
    record = node.deploy(nat_graph())
    assert record.placements["nat1"].implementation.technology \
        is Technology.NATIVE
    assert record.instances["nat1"].is_running
    assert record.rules_installed == 4


def test_nat_dataplane_end_to_end(node):
    node.deploy(nat_graph())
    wan_out = sniff(node.wire("wan0"))
    lan_out = sniff(node.wire("lan0"))
    # Client behind the CPE sends a DNS-ish query to the internet.
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "192.168.1.100", "8.8.8.8", 5353, 53,
        b"query"))
    assert len(wan_out) == 1
    egress = parse_frame(wan_out[0])
    assert egress.ipv4.src == "203.0.113.2"      # masqueraded
    assert egress.ipv4.dst == "8.8.8.8"
    assert egress.udp.payload == b"query"
    # The reply comes back to the NAT address and is translated back.
    node.wire("wan0").transmit(make_udp_frame(
        SERVER_MAC, CLIENT_MAC, "8.8.8.8", "203.0.113.2",
        53, egress.udp.src_port, b"answer"))
    assert len(lan_out) == 1
    ingress = parse_frame(lan_out[0])
    assert ingress.ipv4.dst == "192.168.1.100"
    assert ingress.ipv4.src == "8.8.8.8"
    assert ingress.udp.dst_port == 5353
    assert ingress.udp.payload == b"answer"


def test_nat_as_docker_container(node):
    """Same NF, pinned to the Docker driver: same dataplane behaviour."""
    node.deploy(nat_graph(technology="docker"))
    wan_out = sniff(node.wire("wan0"))
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "192.168.1.100", "8.8.8.8", 40000, 53,
        b"via docker"))
    assert len(wan_out) == 1
    assert parse_frame(wan_out[0]).ipv4.src == "203.0.113.2"


def test_nat_as_vm(node):
    node.deploy(nat_graph(technology="vm"))
    record = node.orchestrator.deployed["g-nat"]
    instance = record.instances["nat1"]
    assert instance.technology is Technology.VM
    assert instance.inner_devices == {"lan": "eth0", "wan": "eth1"}
    # VM RAM is the full guest allocation, far above docker/native.
    assert instance.runtime_ram_mb > 300
    wan_out = sniff(node.wire("wan0"))
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "192.168.1.100", "8.8.8.8", 1234, 53,
        b"via vm"))
    assert len(wan_out) == 1


def test_undeploy_releases_everything(node):
    node.deploy(nat_graph())
    assert node.accountant.ram_used_mb > 0
    node.undeploy("g-nat")
    assert node.accountant.ram_used_mb == 0
    assert node.orchestrator.list_graphs() == []
    assert node.steering.flow_counts() == {"LSI-0": 0}
    # Dataplane is dead: nothing leaves the node any more.
    wan_out = sniff(node.wire("wan0"))
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "192.168.1.100", "8.8.8.8", 1, 53, b"x"))
    assert wan_out == []


def test_two_graphs_share_native_nat(node):
    node.add_physical_interface("lan1")
    g1 = nat_graph("g1", lan_ep="lan0", lan_cidr="10.1.0.0/24",
                   lan_addr="10.1.0.1/24", wan_addr="100.64.1.2/24",
                   nat_pool="100.64.1.0/24")
    g2 = nat_graph("g2", lan_ep="lan1", lan_cidr="10.2.0.0/24",
                   lan_addr="10.2.0.1/24", wan_addr="100.64.2.2/24",
                   nat_pool="100.64.2.0/24")
    r1 = node.deploy(g1)
    r2 = node.deploy(g2)
    i1, i2 = r1.instances["nat1"], r2.instances["nat1"]
    assert i1.shared and i2.shared
    assert i1.netns == i2.netns                 # one component instance
    assert i1.mark != i2.mark                   # distinct graph marks
    assert i1.port_vlans["lan"] != i2.port_vlans["lan"]
    # Both graphs forward, each masquerading to its own pool.
    wan_out = sniff(node.wire("wan0"))
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "10.1.0.50", "8.8.8.8", 1111, 53, b"g1"))
    node.wire("lan1").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "10.2.0.60", "8.8.8.8", 2222, 53, b"g2"))
    assert len(wan_out) == 2
    sources = {parse_frame(f).ipv4.src for f in wan_out}
    assert sources == {"100.64.1.2", "100.64.2.2"}


def test_shared_nat_isolates_graphs(node):
    """Traffic of one graph cannot leak through another graph's path."""
    node.add_physical_interface("lan1")
    node.deploy(nat_graph("g1", lan_ep="lan0", lan_addr="10.1.0.1/24",
                          wan_addr="100.64.1.2/24",
                          nat_pool="100.64.1.0/24"))
    node.deploy(nat_graph("g2", lan_ep="lan1", lan_addr="10.2.0.1/24",
                          wan_addr="100.64.2.2/24",
                          nat_pool="100.64.2.0/24"))
    wan_out = sniff(node.wire("wan0"))
    # A g1-side client spoofing a g2 source still exits via g1's path
    # (mark comes from the ingress subinterface, not the IP header) —
    # and never via g2's pool.
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "10.2.0.60", "8.8.8.8", 3333, 53,
        b"spoof"))
    for frame in wan_out:
        assert parse_frame(frame).ipv4.src != "100.64.2.2"


def test_shared_instance_torn_down_with_last_graph(node):
    node.add_physical_interface("lan1")
    node.deploy(nat_graph("g1", lan_ep="lan0", wan_addr="100.64.1.2/24",
                          nat_pool="100.64.1.0/24"))
    node.deploy(nat_graph("g2", lan_ep="lan1", wan_addr="100.64.2.2/24",
                          nat_pool="100.64.2.0/24"))
    assert node.shared_nnfs.instance_of("iptables-nat") is not None
    node.undeploy("g1")
    assert node.shared_nnfs.instance_of("iptables-nat") is not None
    node.undeploy("g2")
    assert node.shared_nnfs.instance_of("iptables-nat") is None
    assert "nnf-shared-iptables-nat" not in node.host.namespaces


def test_exclusive_nnf_second_graph_falls_back(node):
    """strongSwan is exclusive: the second graph gets a VNF instead."""
    def ipsec_graph(graph_id, lan_ep):
        graph = Nffg(graph_id=graph_id)
        graph.add_nf("vpn", "ipsec-endpoint", config={
            "lan.address": "192.168.1.1/24",
            "wan.address": "203.0.113.2/24",
            "ipsec.local": "203.0.113.2",
            "ipsec.peer": "198.51.100.9",
            "ipsec.local_subnet": "192.168.1.0/24",
            "ipsec.remote_subnet": "10.8.0.0/24",
            "ipsec.psk": "hunter2",
        })
        graph.add_endpoint("lan", lan_ep)
        graph.add_endpoint("wan", "wan0")
        graph.add_flow_rule("r1", "endpoint:lan", "vnf:vpn:lan")
        graph.add_flow_rule("r2", "vnf:vpn:lan", "endpoint:lan")
        graph.add_flow_rule("r3", "vnf:vpn:wan", "endpoint:wan")
        graph.add_flow_rule("r4", "endpoint:wan", "vnf:vpn:wan",
                            ip_dst="203.0.113.2/32")
        return graph

    node.add_physical_interface("lan1")
    first = node.deploy(ipsec_graph("vpn1", "lan0"))
    assert first.placements["vpn"].implementation.technology \
        is Technology.NATIVE
    second = node.deploy(ipsec_graph("vpn2", "lan1"))
    assert second.placements["vpn"].implementation.technology \
        is not Technology.NATIVE


def test_ipsec_nnf_encrypts_on_the_wire(node):
    graph = Nffg(graph_id="vpn")
    graph.add_nf("vpn", "ipsec-endpoint", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1",
        "ipsec.local": "203.0.113.2",
        "ipsec.peer": "198.51.100.9",
        "ipsec.local_subnet": "192.168.1.0/24",
        "ipsec.remote_subnet": "10.8.0.0/24",
        "ipsec.psk": "hunter2",
    })
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:vpn:lan")
    graph.add_flow_rule("r2", "vnf:vpn:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:vpn:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:vpn:wan",
                        ip_dst="203.0.113.2/32")
    node.deploy(graph)
    wan_out = sniff(node.wire("wan0"))
    node.wire("lan0").transmit(make_udp_frame(
        CLIENT_MAC, SERVER_MAC, "192.168.1.100", "10.8.0.7", 4000, 5001,
        b"top secret payload"))
    assert len(wan_out) == 1
    outer = parse_frame(wan_out[0])
    assert outer.ipv4.proto == 50                       # ESP
    assert outer.ipv4.src == "203.0.113.2"
    assert outer.ipv4.dst == "198.51.100.9"
    assert b"top secret payload" not in outer.ipv4.payload


def test_graph_update_adds_and_removes_rules(node):
    graph = nat_graph()
    node.deploy(graph)
    flows_before = node.steering.flow_counts()
    updated = nat_graph()
    updated.flow_rules = [r for r in updated.flow_rules
                          if r.rule_id != "r4"]
    record = node.update(updated)
    assert record.rules_installed == 3
    flows_after = node.steering.flow_counts()
    assert (sum(flows_after.values())
            < sum(flows_before.values()))


def test_deploy_rejects_unknown_template(node):
    graph = Nffg(graph_id="bad")
    graph.add_nf("x", "no-such-template")
    graph.add_endpoint("lan", "lan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:x:lan")
    from repro.core import OrchestrationError
    with pytest.raises(OrchestrationError, match="unknown template"):
        node.deploy(graph)
    # Failed deploy must leave no residue.
    assert node.orchestrator.list_graphs() == []
    assert node.accountant.ram_used_mb == 0


def test_deploy_admission_failure_rolls_back():
    from repro.resources.capabilities import NodeCapabilities, NodeClass
    tiny = NodeCapabilities(node_class=NodeClass.CPE, cpu_cores=1,
                            cpu_mhz=600, ram_mb=96, disk_mb=256,
                            features=frozenset({"native", "linux"}))
    node = ComputeNode("tiny", capabilities=tiny)
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    graph = Nffg(graph_id="heavy")
    # dpi has no native implementation -> nothing feasible on this node.
    graph.add_nf("dpi1", "dpi")
    graph.add_endpoint("lan", "lan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:dpi1:in")
    from repro.core import OrchestrationError
    with pytest.raises(OrchestrationError):
        node.deploy(graph)
    assert node.orchestrator.list_graphs() == []
