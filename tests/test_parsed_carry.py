"""ParsedFrame carry across hops: reuse what's valid, never serve stale.

The zero-reparse pipeline forwards :class:`ParsedFrame` views across
virtual links and *derives* the parse of rewritten frames from the
carried one.  The contract under test:

* an L2-only rewrite (VLAN push/pop, MAC/VID set-field — everything a
  switch action can do) keeps the IPv4/L4 decode and the cached
  ``ip_ints``, because the payload bytes are shared;
* a rewrite that swaps the payload (or the ethertype) gets a clean
  parse — a stale ``ip_ints``/``five_tuple`` can never be observed at
  the next hop;
* ``wire_len`` is always recomputed (tags change frame length);
* the next hop's lookup sees post-rewrite L2 fields, and IP/L4 matches
  at later hops still work on carried parses without re-decoding.
"""

from dataclasses import replace

import pytest

from repro.linuxnet import VethPair
from repro.net import MacAddress, ParsedFrame, make_udp_frame, parse_frame
from repro.net.builder import ParsedFrame as BuilderParsedFrame
from repro.switch import (
    Datapath,
    FlowEntry,
    FlowMatch,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    VirtualLink,
)

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def udp_frame(vlan=None, dst="10.0.0.2"):
    return make_udp_frame(MAC_A, MAC_B, "10.0.0.1", dst, 1234, 5678,
                          b"payload", vlan=vlan)


def test_parsedframe_reexported():
    assert ParsedFrame is BuilderParsedFrame


def test_derive_carries_l3_l4_for_shared_payload():
    parsed = parse_frame(udp_frame())
    ipv4, udp, ints = parsed.ipv4, parsed.udp, parsed.ip_ints
    derived = parsed.derive(replace(parsed.eth, vlan=42, vlan_pcp=1))
    # Same decoded objects — nothing is parsed again.
    assert derived.ipv4 is ipv4
    assert derived.udp is udp
    assert derived.ip_ints == ints
    assert derived.eth.vlan == 42


def test_derive_does_not_redecode(monkeypatch):
    from repro.net import ipv4 as ipv4_module

    parsed = parse_frame(udp_frame())
    assert parsed.five_tuple is not None  # force the full decode
    calls = []
    monkeypatch.setattr(
        ipv4_module.IPv4Packet, "from_bytes",
        classmethod(lambda cls, data: calls.append(1)))
    derived = parsed.derive(replace(parsed.eth, dst=MacAddress(MAC_A)))
    assert derived.ipv4 is parsed.ipv4
    assert derived.five_tuple == parsed.five_tuple
    assert calls == []  # decode never re-ran


def test_derive_undecoded_frame_stays_lazy():
    parsed = parse_frame(udp_frame())
    derived = parsed.derive(replace(parsed.eth, vlan=7))
    # Neither side had decoded L3 yet; the derived view decodes on
    # demand and sees the right header.
    assert derived.ipv4 is not None
    assert derived.ipv4.dst == "10.0.0.2"


def test_derive_marks_dirty_on_payload_change():
    parsed = parse_frame(udp_frame(dst="10.0.0.2"))
    assert parsed.ip_ints is not None
    assert parsed.five_tuple[1] == "10.0.0.2"
    other = udp_frame(dst="99.0.0.9")
    derived = parsed.derive(replace(parsed.eth, payload=other.payload))
    # No stale caches: the new payload decodes fresh.
    assert derived.ipv4.dst == "99.0.0.9"
    assert derived.five_tuple[1] == "99.0.0.9"
    assert derived.ip_ints != parsed.ip_ints


def test_derive_marks_dirty_on_ethertype_change():
    parsed = parse_frame(udp_frame())
    assert parsed.ipv4 is not None
    derived = parsed.derive(replace(parsed.eth, ethertype=0x0806))
    assert derived.ipv4 is None  # ARP frames have no IPv4 view


def test_derive_recomputes_wire_len():
    parsed = parse_frame(udp_frame())
    bare_len = parsed.wire_len
    tagged = parsed.derive(replace(parsed.eth, vlan=9))
    assert tagged.wire_len == bare_len + 4  # 802.1Q tag
    popped = tagged.derive(replace(tagged.eth, vlan=None))
    assert popped.wire_len == bare_len


def chain_two(first_actions, second_match_extra):
    """hop0 --link--> hop1; hop0 applies ``first_actions`` towards the
    link, hop1 matches the link port + ``second_match_extra`` to a
    device-backed sink."""
    hop0, hop1 = Datapath(1, "hop0"), Datapath(2, "hop1")
    hop0.add_port("ingress")
    link = VirtualLink.connect(hop0, hop1, name="vl")
    out_no = link.far_port(hop0).port_no
    far_no = link.far_port(hop1).port_no
    hop0.install(FlowEntry(match=FlowMatch(in_port=1),
                           actions=tuple(first_actions) + (Output(out_no),)))
    pair = VethPair("sink-sw", "sink-wire")
    received = []
    pair.b.set_up()
    pair.b.attach_handler(lambda dev, fr: received.append(fr))
    sink = hop1.add_port("sink", device=pair.a)
    hop1.install(FlowEntry(
        match=FlowMatch(in_port=far_no, **second_match_extra),
        actions=(Output(sink.port_no),)))
    return hop0, hop1, received


@pytest.mark.parametrize("actions,match_extra", [
    ((PushVlan(31),), {"vlan_vid": 31, "ip_dst": "10.0.0.0/8"}),
    ((PushVlan(8), SetField("vlan_vid", 44)),
     {"vlan_vid": 44, "tp_dst": 5678}),
    ((SetField("eth_dst", "02:00:00:00:00:77"),),
     {"eth_dst": MacAddress("02:00:00:00:00:77"), "ip_src": "10.0.0.1/32"}),
])
def test_next_hop_matches_on_post_rewrite_fields(actions, match_extra):
    """A mutating hop must never leave the next hop matching stale L2
    state, while IP/L4 matches keep working on the carried parse."""
    hop0, hop1, received = chain_two(actions, match_extra)
    frames = [udp_frame() for _ in range(3)]
    hop0.process_batch_from(1, frames)
    assert len(received) == 3
    assert hop1.table_misses == 0


def test_next_hop_pop_then_ip_match_uses_carried_decode():
    hop0, hop1, received = chain_two(
        (PopVlan(),), {"vlan_vid": -2, "ip_dst": "10.0.0.0/8"})  # NO_VLAN
    hop0.process_batch_from(1, [udp_frame(vlan=12) for _ in range(2)])
    assert len(received) == 2
    assert all(frame.vlan is None for frame in received)


def test_chain_decodes_ipv4_once_per_frame(monkeypatch):
    """Two hops both matching on IP fields share one L3 decode."""
    from repro.net import ipv4 as ipv4_module

    hop0, hop1 = Datapath(1, "hop0"), Datapath(2, "hop1")
    hop0.add_port("ingress")
    link = VirtualLink.connect(hop0, hop1, name="vl")
    hop0.install(FlowEntry(
        match=FlowMatch(in_port=1, ip_dst="10.0.0.0/8"),
        actions=(PushVlan(5), Output(link.far_port(hop0).port_no))))
    sink = hop1.add_port("sink")
    hop1.install(FlowEntry(
        match=FlowMatch(in_port=link.far_port(hop1).port_no,
                        ip_dst="10.0.0.0/8"),
        actions=(Output(sink.port_no),)))

    frames = [udp_frame() for _ in range(4)]
    original = ipv4_module.IPv4Packet.from_bytes.__func__
    calls = [0]

    def counting(cls, data):
        calls[0] += 1
        return original(cls, data)

    monkeypatch.setattr(ipv4_module.IPv4Packet, "from_bytes",
                        classmethod(counting))
    hop0.process_batch_from(1, frames)
    assert sink.tx_packets == 4
    assert calls[0] == 4  # one decode per frame, not per hop
