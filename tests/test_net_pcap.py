"""pcap reader/writer round-trip tests."""

import io

import pytest

from repro.net import MacAddress, make_udp_frame
from repro.net.pcap import PcapReader, PcapWriter

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def test_roundtrip_preserves_frames_and_times():
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    frames = []
    for index in range(3):
        frame = make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                               1000 + index, 5001, b"x" * index)
        frames.append(frame.to_bytes())
        writer.write(timestamp=index * 0.5, frame_bytes=frames[-1])
    buffer.seek(0)
    records = list(PcapReader(buffer))
    assert len(records) == 3
    for index, (timestamp, data) in enumerate(records):
        assert timestamp == pytest.approx(index * 0.5, abs=1e-6)
        assert data == frames[index]


def test_reader_rejects_garbage():
    with pytest.raises(ValueError):
        PcapReader(io.BytesIO(b"not a pcap file at all......"))


def test_reader_rejects_truncated_record():
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    writer.write(0.0, b"\x01" * 20)
    truncated = buffer.getvalue()[:-5]
    reader = PcapReader(io.BytesIO(truncated))
    with pytest.raises(ValueError):
        list(reader)


def test_microsecond_rollover():
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    writer.write(1.9999999, b"\x00" * 14)  # rounds to 2.0s
    buffer.seek(0)
    ((timestamp, _data),) = list(PcapReader(buffer))
    assert timestamp == pytest.approx(2.0, abs=1e-6)
