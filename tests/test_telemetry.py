"""Telemetry: ring buffers, sampled rates, journal-derived MTTR, export.

The journal-derived figures are asserted *exactly* — the sim clock
drives every timestamp, so MTTR and convergence times are replays of
the event log, not wall-clock approximations.
"""

import re

import pytest

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError, Health
from repro.core import ComputeNode
from repro.core.reconciler import EventJournal
from repro.net import MacAddress, make_udp_frame
from repro.nffg.model import Nffg
from repro.resources.capabilities import NodeCapabilities
from repro.rest.app import RestApp
from repro.rest.client import RestClient
from repro.sim.engine import Simulator
from repro.telemetry import ControlLoop, MetricsRegistry, SeriesRing, \
    render_prometheus
from repro.telemetry.export import render_top

SRC = MacAddress("02:aa:00:00:00:01")
DST = MacAddress("02:aa:00:00:00:02")


class SickableDriver(ComputeDriver):
    """Docker-flavored driver with injectable health/restart failures."""

    technology = Technology.DOCKER
    netns_prefix = "sick"

    def __init__(self, host, restartable=True):
        super().__init__(host)
        self.sick = set()
        self.restartable = restartable

    def create(self, spec):
        instance = super().create(spec)
        self.sick.discard(spec.instance_id)
        return instance

    def restart(self, instance):
        if not self.restartable:
            raise DriverError("injected: core dump on restart")
        super().restart(instance)
        self.sick.discard(instance.instance_id)

    def health(self, instance):
        if instance.instance_id in self.sick:
            return Health(False, "injected crash")
        return super().health(instance)


def make_node(restartable=True):
    node = ComputeNode("telemetry-test",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    driver = SickableDriver(node.host, restartable=restartable)
    node.compute._drivers[Technology.DOCKER] = driver
    return node, driver


def dpi_graph(replicas=1):
    graph = Nffg(graph_id="tg", name="telemetry graph")
    graph.add_nf("dpi", "dpi", technology="docker", replicas=replicas)
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:dpi:in")
    graph.add_flow_rule("r2", "vnf:dpi:out", "endpoint:wan")
    return graph


def flows(count, frames_per_flow=1):
    out = []
    for f in range(count):
        for _ in range(frames_per_flow):
            out.append(make_udp_frame(SRC, DST, f"10.0.{f % 5}.{f % 31}",
                                      "10.1.0.1", 5000 + f, 53, b"t"))
    return out


# -- ring buffers ------------------------------------------------------------------

def test_series_ring_bounds_and_evicts():
    ring = SeriesRing(capacity=3)
    for i in range(5):
        ring.append(float(i), float(i * 10))
    assert len(ring) == 3
    assert ring.items() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert ring.last == (4.0, 40.0)
    with pytest.raises(ValueError):
        SeriesRing(capacity=0)


def test_event_journal_ring_reports_dropped():
    journal = EventJournal(max_events=4, clock=lambda: 7.5)
    for i in range(10):
        journal.append("g", f"kind-{i}")
    events = journal.events("g")
    assert len(events) == 4
    assert [e.kind for e in events] == ["kind-6", "kind-7", "kind-8",
                                       "kind-9"]
    assert journal.dropped_count("g") == 6
    assert all(e.time == 7.5 for e in events)
    journal.forget("g")
    assert journal.dropped_count("g") == 0
    with pytest.raises(ValueError):
        EventJournal(max_events=0)


def test_rest_events_report_ring_bound_and_dropped():
    node, _ = make_node()
    node.orchestrator.reconciler.journal.max_events = 5
    # Rebuild rings at the new bound by using a fresh journal instead.
    journal = EventJournal(max_events=5)
    node.orchestrator.reconciler.journal = journal
    node.telemetry.reconciler = node.orchestrator.reconciler
    client = RestClient(RestApp(node))
    node.deploy(dpi_graph())
    for _ in range(4):
        node.orchestrator.reconcile("tg")
    reply = client.get("/graphs/tg/events")
    assert reply.status == 200
    assert reply.body["max-events"] == 5
    assert len(reply.body["events"]) == 5
    assert reply.body["dropped"] > 0


# -- sampled rates -----------------------------------------------------------------

def test_registry_derives_per_nf_rates_between_samples():
    node, _ = make_node()
    node.deploy(dpi_graph())
    registry = node.telemetry
    registry.sample(now=0.0)
    node.steering.inject_batch("lan0", flows(10, frames_per_flow=4))
    registry.sample(now=2.0)
    rates = registry.nf_rates("tg")
    assert rates["dpi"]["pps"] == pytest.approx(20.0)  # 40 frames / 2 s
    assert rates["dpi"]["rx-packets-total"] == 40
    assert rates["dpi"]["bytes-per-second"] > 0
    assert registry.group_pps("tg", "dpi") == pytest.approx(20.0)


def test_registry_aggregates_replica_groups():
    node, _ = make_node()
    node.deploy(dpi_graph(replicas=3))
    registry = node.telemetry
    registry.sample(now=0.0)
    node.steering.inject_batch("lan0", flows(30, frames_per_flow=2))
    registry.sample(now=1.0)
    assert registry.replica_counts("tg") == {"dpi": 3}
    rates = registry.nf_rates("tg")
    assert set(rates) == {"dpi", "dpi@1", "dpi@2"}
    assert registry.group_pps("tg", "dpi") == pytest.approx(60.0)
    # Each replica saw a non-trivial share of the hash spread.
    for nf_id in rates:
        assert rates[nf_id]["pps"] > 0


def test_counter_reset_on_recreate_never_yields_negative_rates():
    """A heal-recreate gives the NF fresh LSI ports (counters back to
    0); the next sample must re-base instead of deriving a negative
    pps that would read as a drain signal."""
    node, driver = make_node(restartable=False)
    node.deploy(dpi_graph())
    registry = node.telemetry
    registry.sample(now=0.0)
    node.steering.inject_batch("lan0", flows(10, frames_per_flow=5))
    registry.sample(now=1.0)
    assert registry.nf_rates("tg")["dpi"]["pps"] == pytest.approx(50.0)
    driver.sick.add("tg-dpi")
    node.orchestrator.reconcile("tg")  # restart fails -> recreate
    registry.sample(now=2.0)
    rates = registry.nf_rates("tg")["dpi"]
    assert rates["pps"] >= 0
    assert rates["rx-packets-total"] == 0  # fresh ports, rebased
    node.steering.inject_batch("lan0", flows(4, frames_per_flow=2))
    registry.sample(now=3.0)
    assert registry.nf_rates("tg")["dpi"]["pps"] == pytest.approx(8.0)


def test_ad_hoc_scrapes_do_not_shorten_rate_windows():
    """REST-style samples between control-loop iterations refresh
    totals but never derive a rate over a tiny window (the autoscaler
    would otherwise see ~0 pps on a loaded NF)."""
    node, _ = make_node()
    node.deploy(dpi_graph())
    registry = node.telemetry
    registry.min_rate_window = 0.5  # what ControlLoop(interval=1.0) sets
    registry.sample(now=10.0)
    node.steering.inject_batch("lan0", flows(20, frames_per_flow=5))
    registry.sample(now=10.95)      # scrape: 0.95 >= 0.5, fine
    assert registry.nf_rates("tg")["dpi"]["pps"] > 0
    node.steering.inject_batch("lan0", flows(20, frames_per_flow=5))
    registry.sample(now=10.99)      # scrape right before the loop tick
    registry.sample(now=11.0)       # loop tick: window still 10.95->11.0?
    # The 0.04 s and 0.01 s windows were both refused; the rate stands
    # on the last full window and the totals are fresh.
    rates = registry.nf_rates("tg")["dpi"]
    assert rates["rx-packets-total"] == 200
    assert rates["pps"] > 50  # not the ~0 a 10 ms empty window would give
    assert ControlLoop(node.orchestrator, registry,
                       interval=2.0).registry.min_rate_window == 1.0


def test_registry_drops_state_for_undeployed_graphs():
    node, _ = make_node()
    node.deploy(dpi_graph())
    node.telemetry.sample(now=0.0)
    assert node.telemetry.graphs() == ["tg"]
    node.undeploy("tg")
    node.telemetry.sample(now=1.0)
    assert node.telemetry.graphs() == []


# -- journal-derived availability ---------------------------------------------------

def test_mttr_is_deterministic_under_the_sim_clock():
    node, driver = make_node(restartable=False)
    sim = Simulator()
    loop = ControlLoop(node.orchestrator, node.telemetry, interval=1.0)
    loop.run_sim(sim)
    node.deploy(dpi_graph())

    def injector():
        yield sim.timeout(3.5)
        driver.sick.add("tg-dpi")

    sim.process(injector(), name="chaos")
    sim.run(until=10.0)
    availability = node.telemetry.availability("tg")
    assert availability["failures"] == 1
    assert availability["heals"] == 1
    # Detected on the tick at t=4.0; the in-place restart fails there,
    # and the recreate on the next tick (t=5.0) completes the repair:
    # MTTR is exactly one control interval, every run.
    assert availability["mttr-seconds"] == pytest.approx(1.0)
    assert availability["journal-dropped"] == 0


def test_availability_reports_convergence_and_scale_times():
    node, _ = make_node()
    journal = node.orchestrator.reconciler.journal
    clock = [0.0]
    journal.clock = lambda: clock[0]
    node.deploy(dpi_graph())
    availability = node.telemetry.availability("tg")
    assert availability["mean-convergence-seconds"] is not None
    assert availability["time-to-scale-seconds"] is None


# -- export -------------------------------------------------------------------------

def test_prometheus_export_and_rest_metrics():
    node, driver = make_node(restartable=False)
    sim = Simulator()
    loop = ControlLoop(node.orchestrator, node.telemetry, interval=1.0)
    loop.run_sim(sim)
    node.deploy(dpi_graph())

    def chaos():
        yield sim.timeout(2.5)
        driver.sick.add("tg-dpi")

    def traffic():
        while True:
            node.steering.inject_batch("lan0", flows(8, frames_per_flow=3))
            yield sim.timeout(1.0)

    sim.process(chaos(), name="chaos")
    sim.process(traffic(), name="traffic")
    sim.run(until=8.0)

    client = RestClient(RestApp(node))
    text = client.prometheus_metrics()
    assert "# TYPE repro_nf_pps gauge" in text
    pps_values = [float(line.rsplit(" ", 1)[1]) for line in text.splitlines()
                  if line.startswith("repro_nf_pps{")]
    assert pps_values and any(value > 0 for value in pps_values)
    mttr_lines = [line for line in text.splitlines()
                  if line.startswith("repro_graph_mttr_seconds")]
    assert len(mttr_lines) == 1
    mttr = float(mttr_lines[0].rsplit(" ", 1)[1])
    assert mttr == pytest.approx(1.0)  # finite, and exact under sim time

    fusion_lines = [line for line in text.splitlines()
                    if line.startswith("repro_fusion_hits_total{")]
    assert any('lsi="LSI-0"' in line for line in fusion_lines)
    assert "# TYPE repro_fusion_invalidations_total counter" in text

    # Flow-state counters export per LSI too (a single-replica graph
    # has no LB hop, so they read zero — but the series exist).
    assert "# TYPE repro_flow_state_flows gauge" in text
    assert "# TYPE repro_flow_state_pinned_total counter" in text
    state_lines = [line for line in text.splitlines()
                   if line.startswith("repro_flow_state_flows{")]
    assert any('lsi="LSI-0"' in line for line in state_lines)

    document = client.graph_metrics("tg")
    assert document["availability"]["heals"] == 1
    assert document["nfs"]["dpi"]["pps"] > 0
    assert set(document["fusion"]) == {"hits", "misses", "dispatch-hits",
                                       "dispatch-misses", "invalidations",
                                       "programs-built", "enabled",
                                       "at-node-ingress"}
    # Per-graph fusion counters are no longer silently zero when the
    # chain fuses at node ingress: LSI-0's per-cookie share is folded
    # into the graph document.
    assert document["fusion"]["hits"] > 0
    assert document["fusion"]["at-node-ingress"]["hits"] > 0
    assert "# TYPE repro_fusion_dispatch_hits_total counter" in text
    assert document["flow-state"]["groups"] == 0  # no LB at 1 replica
    node_document = client.node_metrics()
    assert "LSI-0" in node_document["fusion"]
    assert "LSI-0" in node_document["flow-state"]
    reply = client.get("/metrics")
    assert reply.content_type.startswith("text/plain")
    assert client.get("/graphs/nope/metrics").status == 404


def test_render_top_table():
    node, _ = make_node()
    node.deploy(dpi_graph(replicas=2))
    node.telemetry.sample(now=0.0)
    node.steering.inject_batch("lan0", flows(12, frames_per_flow=2))
    node.telemetry.sample(now=1.0)
    text = render_top(node.telemetry.to_dict())
    assert "GRAPH" in text and "tg" in text and "dpi" in text
    assert "FUSED" in text  # fused-chain hit-rate column
    assert "PIN%" in text   # replica-affinity pin-rate column
    # Replicas aggregate back onto the base NF row.
    assert "dpi@1" not in text
    line = next(line for line in text.splitlines() if " dpi " in line)
    assert " 2 " in line  # replica count column
    # The whole chain — including the replicated spread — fuses at the
    # *node ingress* LSI, so the graph LSI's own engine never sees a
    # frame; the graph's share of LSI-0's counters is recovered by its
    # flow cookie, so FUSED and DISP show real percentages instead of
    # silently rendering "-".
    fused_col, disp_col, pin_col = line.rstrip().rsplit(None, 3)[-3:]
    assert fused_col == "100%" and disp_col == "100%"
    assert pin_col.endswith("%")
    node_fusion = node.telemetry.to_dict()["fusion"]["LSI-0"]
    assert node_fusion["hits"] == 24
    assert node_fusion["dispatch-hits"] == 24
    graph_fusion = node.telemetry.graph_metrics("tg")["fusion"]
    assert graph_fusion["hits"] == 24
    assert graph_fusion["at-node-ingress"]["dispatch-hits"] == 24
    bare = node.telemetry.to_dict()
    for graph in bare["graphs"].values():
        graph.pop("fusion", None)
        graph.pop("flow-state", None)
    legacy = render_top(bare)
    legacy_line = next(l for l in legacy.splitlines() if " dpi " in l)
    assert legacy_line.rstrip().endswith("-")
    legacy_fused = legacy_line.rstrip().rsplit(None, 2)[-2]
    assert legacy_fused == "-"


def test_render_prometheus_escapes_and_counts_samples():
    node, _ = make_node()
    node.deploy(dpi_graph())
    node.telemetry.sample(now=0.0)
    text = render_prometheus(node.telemetry)
    assert text.endswith("\n")
    assert "repro_telemetry_samples_total 1" in text


# -- Prometheus exposition-format conformance ---------------------------------------

_HELP_LINE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$")
_TYPE_LINE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)$")
_SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>'
    r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*")*'
    r')\})? '
    r'(?P<value>-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?'
    r'|NaN|[+-]?Inf))$')
_LABEL_PAIR = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')


def assert_prometheus_conformant(text):
    """Strict line-format check over a full exposition document.

    Every line must be a HELP/TYPE comment or a well-formed sample
    (valid metric name, escaped label values, parseable number); each
    histogram family must render cumulative ``_bucket`` series ending
    at ``le="+Inf"`` with matching ``_sum`` and ``_count`` lines.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    histogram_families = set()
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP"):
            assert _HELP_LINE.match(line), f"bad HELP line: {line!r}"
            continue
        if line.startswith("# TYPE"):
            match = _TYPE_LINE.match(line)
            assert match, f"bad TYPE line: {line!r}"
            if match.group("type") == "histogram":
                histogram_families.add(match.group("name"))
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        labels = dict(_LABEL_PAIR.findall(match.group("labels") or ""))
        samples.append((match.group("name"), labels,
                        float(match.group("value"))))

    for family in histogram_families:
        series = {}
        sums = {}
        counts = {}
        for name, labels, value in samples:
            if name == f"{family}_bucket":
                le = labels.pop("le")
                key = tuple(sorted(labels.items()))
                series.setdefault(key, []).append((le, value))
            elif name == f"{family}_sum":
                sums[tuple(sorted(labels.items()))] = value
            elif name == f"{family}_count":
                counts[tuple(sorted(labels.items()))] = value
        assert set(series) == set(sums) == set(counts), (
            f"{family}: bucket/sum/count series sets disagree")
        for key, buckets in series.items():
            values = [value for _, value in buckets]
            assert values == sorted(values), (
                f"{family}{dict(key)}: buckets not cumulative")
            assert buckets[-1][0] == "+Inf", (
                f"{family}{dict(key)}: last bucket is not +Inf")
            assert buckets[-1][1] == counts[key], (
                f"{family}{dict(key)}: +Inf bucket != _count")
            finite = [float(le) for le, _ in buckets[:-1]]
            assert finite == sorted(finite), (
                f"{family}{dict(key)}: bucket bounds not ascending")


def test_full_metrics_document_is_prometheus_conformant():
    """Strict conformance over the real ``GET /metrics`` output — the
    gauge/counter families from the registry *and* the histogram
    blocks appended by the tracer, after real traffic, reconcile
    activity and control ticks."""
    node, driver = make_node(restartable=False)
    node.tracer.sample_every = 1
    sim = Simulator()
    loop = ControlLoop(node.orchestrator, node.telemetry, interval=1.0)
    loop.run_sim(sim)
    node.deploy(dpi_graph())

    def chaos():
        yield sim.timeout(2.5)
        driver.sick.add("tg-dpi")

    def traffic():
        while True:
            node.steering.inject_batch("lan0", flows(6, frames_per_flow=2))
            yield sim.timeout(1.0)

    sim.process(chaos(), name="chaos")
    sim.process(traffic(), name="traffic")
    sim.run(until=6.0)

    client = RestClient(RestApp(node))
    client.graph_status("tg")  # populate the rest_dispatch histogram
    text = client.prometheus_metrics()
    assert_prometheus_conformant(text)
    # The histogram families that must carry real series by now.
    for family in ("repro_dataplane_batch_seconds",
                   "repro_control_tick_seconds",
                   "repro_reconcile_step_seconds",
                   "repro_rest_dispatch_seconds"):
        assert f"# TYPE {family} histogram" in text
        assert f"{family}_bucket" in text, f"{family} has no series"


def test_prometheus_label_escaping_survives_strict_check():
    """Label values with quotes, backslashes and newlines must escape
    into legal exposition lines (order matters: backslash first)."""
    from repro.telemetry.histograms import HistogramRegistry, \
        render_histograms

    registry = HistogramRegistry()
    registry.register("odd", "Nasty labels.", ("route",))
    registry.observe("odd", ('a"b\\c\nd',), 1e-5)
    text = render_histograms(registry)
    assert_prometheus_conformant(text)
    assert 'route="a\\"b\\\\c\\nd"' in text
