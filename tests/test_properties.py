"""Property-based suites over core data-structure invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.linuxnet.conntrack import ConnTrack, FlowTuple
from repro.linuxnet.routing import RouteTable
from repro.net import (
    EthernetFrame,
    IPv4Packet,
    MacAddress,
    int_to_ip,
    make_udp_frame,
    parse_frame,
)
from repro.sim import Simulator, Store
from repro.switch import FlowEntry, FlowMatch, FlowTable, Output
from repro.switch.actions import PushVlan

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")

ips = st.integers(min_value=1, max_value=(1 << 32) - 2).map(int_to_ip)
ports = st.integers(min_value=1, max_value=65535)


class TestFlowTableProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 8)),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_lookup_returns_highest_priority_match(self, specs):
        table = FlowTable()
        for priority, port in specs:
            table.add(FlowEntry(match=FlowMatch(), actions=(Output(port),),
                                priority=priority))
        parsed = parse_frame(make_udp_frame(MAC_A, MAC_B, "1.1.1.1",
                                            "2.2.2.2", 1, 2, b""))
        hit = table.lookup(1, parsed)
        assert hit is not None
        assert hit.priority == max(priority for priority, _port in specs)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30,
                    unique=True))
    @settings(max_examples=50)
    def test_entries_sorted_by_priority(self, priorities):
        table = FlowTable()
        for index, priority in enumerate(priorities):
            table.add(FlowEntry(match=FlowMatch(in_port=index),
                                actions=(), priority=priority))
        listed = [entry.priority for entry in table]
        assert listed == sorted(priorities, reverse=True)

    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=30)
    def test_add_then_strict_delete_is_identity(self, priority):
        table = FlowTable()
        baseline = FlowEntry(match=FlowMatch(in_port=9), actions=(),
                             priority=5)
        table.add(baseline)
        match = FlowMatch(in_port=1, eth_type=0x0800)
        table.add(FlowEntry(match=match, actions=(), priority=priority))
        removed = table.delete(match=match, priority=priority, strict=True)
        assert removed == 1
        assert len(table) == 1

    @given(st.lists(st.integers(1, 4094), min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_wildcard_delete_subsumes_all(self, vids):
        table = FlowTable()
        for index, vid in enumerate(vids):
            table.add(FlowEntry(match=FlowMatch(in_port=index,
                                                vlan_vid=vid),
                                actions=(), priority=index))
        populated = len(table)
        assert table.delete(match=FlowMatch()) == populated
        assert len(table) == 0


class TestRoutingProperties:
    @given(st.lists(st.tuples(st.integers(0, (1 << 32) - 1),
                              st.integers(8, 30)),
                    min_size=1, max_size=15),
           st.integers(0, (1 << 32) - 1))
    @settings(max_examples=50)
    def test_lpm_always_at_least_default(self, prefixes, probe):
        table = RouteTable()
        table.add_cidr("0.0.0.0/0", "default")
        for index, (network, plen) in enumerate(prefixes):
            cidr = f"{int_to_ip(network)}/{plen}"
            try:
                table.add_cidr(cidr, f"dev{index}")
            except ValueError:
                pass  # duplicate after host-bit masking
        route = table.lookup(int_to_ip(probe))
        assert route is not None

    @given(st.integers(0, (1 << 32) - 1), st.integers(1, 31))
    @settings(max_examples=50)
    def test_more_specific_always_wins(self, address, plen):
        table = RouteTable()
        cidr_wide = f"{int_to_ip(address)}/{plen}"
        cidr_narrow = f"{int_to_ip(address)}/{plen + 1}"
        table.add_cidr(cidr_wide, "wide")
        table.add_cidr(cidr_narrow, "narrow")
        # An address inside the narrow prefix must pick it.
        assert table.lookup(int_to_ip(address)).device == "narrow"


class TestConntrackProperties:
    @given(st.lists(st.tuples(ips, ips, ports, ports), min_size=1,
                    max_size=40, unique=True))
    @settings(max_examples=30)
    def test_both_directions_always_resolve(self, flows):
        table = ConnTrack()
        entries = []
        for src, dst, sport, dport in flows:
            flow = FlowTuple(src, dst, 17, sport, dport)
            if table.lookup(flow) is not None:
                continue
            entries.append((flow, table.create(flow)))
        for flow, entry in entries:
            hit_orig = table.lookup(flow)
            hit_reply = table.lookup(flow.reversed())
            assert hit_orig is not None and hit_orig[0] is entry
            assert hit_reply is not None and hit_reply[0] is entry

    @given(ips, ips, ports, ports, ips, ports)
    @settings(max_examples=30)
    def test_snat_reply_lookup_consistent(self, src, dst, sport, dport,
                                          nat_ip, nat_port):
        table = ConnTrack()
        flow = FlowTuple(src, dst, 6, sport, dport)
        entry = table.create(flow)
        entry.snat = (nat_ip, nat_port)
        table.apply_nat(entry)
        reply = FlowTuple(dst, nat_ip, 6, dport, nat_port or sport)
        hit = table.lookup(reply)
        assert hit is not None and hit[1] == "reply"


class TestFrameProperties:
    @given(st.binary(max_size=200), st.integers(1, 4094),
           st.integers(0, 7))
    @settings(max_examples=50)
    def test_vlan_push_pop_identity(self, payload, vid, pcp):
        frame = EthernetFrame(dst=MAC_A, src=MAC_B, ethertype=0x0800,
                              payload=payload)
        action = PushVlan(vid, pcp)
        tagged = action.apply(frame)
        assert tagged.vlan == vid
        assert tagged.without_vlan() == frame
        # And through the byte codec as well.
        assert EthernetFrame.from_bytes(
            tagged.to_bytes()).without_vlan() == frame

    @given(ips, ips, ports, ports, st.binary(max_size=400))
    @settings(max_examples=50)
    def test_full_stack_roundtrip(self, src, dst, sport, dport, payload):
        frame = make_udp_frame(MAC_A, MAC_B, src, dst, sport, dport,
                               payload)
        parsed = parse_frame(frame.to_bytes())
        assert parsed.five_tuple == (src, dst, 17, sport, dport)
        assert parsed.udp.payload == payload


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_store_preserves_fifo_order(self, items):
        sim = Simulator()
        store = Store(sim)
        received = []

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)

        sim.process(consumer())
        for item in items:
            store.put(item)
        sim.run()
        assert received == items
