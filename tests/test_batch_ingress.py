"""Batch-aware device ingress: real traffic lands on the batched path.

Unit coverage for the :class:`NetDevice` batch protocol
(``transmit_batch`` / ``receive_batch`` / ``attach_handler``'s
``batch_handler``), plus integration proof that every real ingress
flavor — veth wire traffic into a deployed node, pcap replay and
REST-driven injection — reaches
:meth:`~repro.switch.datapath.Datapath.process_batch_from` instead of
the per-frame :meth:`~repro.switch.datapath.Datapath.process` loop,
with observable effects identical to per-frame delivery.
"""

import io

from repro.core.node import ComputeNode
from repro.linuxnet.devices import NetDevice, VethPair
from repro.net import MacAddress, make_udp_frame
from repro.net.pcap import PcapWriter
from repro.nffg.model import Nffg
from repro.rest.app import RestApp
from repro.switch import Datapath, FlowEntry, FlowMatch, Output

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def frames(count, payload=b"x"):
    return [make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                           1000 + i, 2000, payload) for i in range(count)]


# -- NetDevice batch protocol ---------------------------------------------------

def test_batch_handler_gets_whole_batch_in_one_call():
    device = NetDevice("dev0")
    device.set_up()
    single_calls, batch_calls = [], []
    device.attach_handler(
        lambda dev, fr: single_calls.append(fr),
        batch_handler=lambda dev, frs: batch_calls.append(list(frs)))
    batch = frames(4)
    device.receive_batch(batch)
    assert batch_calls == [batch]
    assert single_calls == []
    assert device.rx_packets == 4
    assert device.rx_bytes == sum(len(f) for f in batch)


def test_receive_batch_falls_back_per_frame_without_batch_handler():
    device = NetDevice("dev0")
    device.set_up()
    seen = []
    device.attach_handler(lambda dev, fr: seen.append(fr))
    device.receive_batch(frames(3))
    assert len(seen) == 3
    assert device.rx_packets == 3


def test_receive_batch_down_device_drops_all():
    device = NetDevice("dev0")
    device.receive_batch(frames(5))
    assert device.rx_dropped == 5
    assert device.rx_packets == 0


def test_detach_handler_clears_batch_handler_too():
    device = NetDevice("dev0")
    device.set_up()
    device.attach_handler(lambda dev, fr: None,
                          batch_handler=lambda dev, frs: None)
    device.detach_handler()
    device.receive_batch(frames(1))
    assert device.rx_dropped == 1  # no sink left


def test_transmit_batch_reaches_peer_in_one_receive_batch():
    pair = VethPair("a0", "b0")
    pair.a.set_up()
    pair.b.set_up()
    batches = []
    pair.b.attach_handler(lambda dev, fr: None,
                          batch_handler=lambda dev, frs: batches.append(
                              list(frs)))
    batch = frames(3)
    pair.a.transmit_batch(batch)
    assert batches == [batch]
    assert pair.a.tx_packets == 3
    assert pair.b.rx_packets == 3


def test_transmit_batch_drops_oversized_keeps_rest():
    pair = VethPair("a0", "b0", mtu=100)
    pair.a.set_up()
    pair.b.set_up()
    received = []
    pair.b.attach_handler(lambda dev, fr: received.append(fr))
    big = make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", 1, 2,
                         b"y" * 300)
    batch = frames(2) + [big]
    pair.a.transmit_batch(batch)
    assert len(received) == 2
    assert pair.a.tx_dropped == 1
    assert pair.a.tx_packets == 2


def test_transmit_batch_down_device_drops_all():
    pair = VethPair("a0", "b0")
    pair.b.set_up()  # a stays down
    pair.a.transmit_batch(frames(2))
    assert pair.a.tx_dropped == 2
    assert pair.b.rx_packets == 0


# -- switch port ingress ---------------------------------------------------------

def _spy(datapath):
    """Record which pipeline entry points run on ``datapath``, per
    ingress port: ``{"process": [port, ...], "batch_from": [port, ...]}``."""
    calls = {"process": [], "batch_from": []}
    original_process = datapath.process
    original_batch_from = datapath.process_batch_from

    def process(in_port, frame):
        calls["process"].append(in_port)
        return original_process(in_port, frame)

    def process_batch_from(in_port, batch):
        calls["batch_from"].append(in_port)
        return original_batch_from(in_port, batch)

    datapath.process = process
    datapath.process_batch_from = process_batch_from
    return calls


def test_device_port_batch_ingress_routes_through_process_batch():
    dp = Datapath(1)
    pair = VethPair("sw0", "wire0")
    pair.b.set_up()
    in_port = dp.add_port("in", device=pair.a)
    out = dp.add_port("out")
    dp.install(FlowEntry(match=FlowMatch(in_port=in_port.port_no),
                         actions=(Output(out.port_no),)))
    calls = _spy(dp)
    pair.b.transmit_batch(frames(5))
    assert calls == {"process": [], "batch_from": [in_port.port_no]}
    assert out.tx_packets == 5
    # Per-frame transmit still uses the single-frame path.
    pair.b.transmit(frames(1)[0])
    assert calls == {"process": [in_port.port_no],
                     "batch_from": [in_port.port_no]}
    assert out.tx_packets == 6


def _deployed_node():
    """A node with a docker NAT deployed: a *dedicated* NF, so the
    lan->NF rule crosses the LSI-0 -> graph-LSI virtual link."""
    node = ComputeNode("cpe")
    lan = node.add_physical_interface("lan0")
    wan = node.add_physical_interface("wan0")
    graph = Nffg(graph_id="g1")
    graph.add_nf("nat1", "nat", technology="docker", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1",
    })
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:wan", "endpoint:wan")
    node.deploy(graph)
    return node, lan, wan


def test_real_wire_ingress_uses_batched_pipeline_end_to_end():
    """The acceptance-criteria integration: frames transmitted on the
    node's physical wire (NetDevice ingress, not the bench hook) run
    the batched zero-reparse pipeline, and the result is identical to
    per-frame delivery on a twin node."""
    batch_node, batch_wire, _ = _deployed_node()
    single_node, single_wire, _ = _deployed_node()

    base_batch = batch_node.steering.base.datapath
    lan_port = base_batch.port_by_name("lan0").port_no
    calls = _spy(base_batch)

    batch_wire.transmit_batch(frames(6))
    # The wire batch entered through the batched pipeline, exactly once;
    # no frame took the per-frame path at the physical ingress port (the
    # NF's own forwarded traffic re-enters per frame — namespace stacks
    # transmit frame by frame — which is fine and expected).
    assert calls["batch_from"] == [lan_port]
    assert lan_port not in calls["process"]

    for frame in frames(6):
        single_wire.transmit(frame)

    def observe(node):
        dp = node.steering.base.datapath
        network = node.steering.graphs["g1"]
        return {
            "base_rx": dp.rx_packets,
            "base_misses": dp.table_misses,
            "graph_rx": network.lsi.datapath.rx_packets,
            "carried": network.link.carried,
            "base_flows": [(e.packets, e.bytes) for e in dp.table],
            "graph_flows": [(e.packets, e.bytes)
                            for e in network.lsi.datapath.table],
        }

    assert observe(batch_node) == observe(single_node)
    # Each frame crossed the virtual link twice: lan -> NF, NF -> wan.
    assert observe(batch_node)["carried"] == 12


def test_pcap_replay_lands_on_batched_pipeline():
    node, _lan, _wan = _deployed_node()
    base = node.steering.base.datapath
    calls = _spy(base)

    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    originals = frames(7, payload=b"pcap")
    for index, frame in enumerate(originals):
        writer.write(float(index), frame.to_bytes())
    buffer.seek(0)

    lan_port = base.port_by_name("lan0").port_no
    replayed = node.steering.replay_pcap("lan0", buffer, batch_size=3)
    assert replayed == 7
    assert lan_port not in calls["process"]
    assert calls["batch_from"].count(lan_port) == 3  # ceil(7 / 3) batches
    assert base.ports[lan_port].rx_packets == 7


def test_rest_injection_lands_on_batched_pipeline():
    node, _lan, _wan = _deployed_node()
    app = RestApp(node)
    base = node.steering.base.datapath
    calls = _spy(base)

    body = ('{"frames": ['
            + ", ".join(f'"{f.to_bytes().hex()}"' for f in frames(4))
            + "]}").encode()
    lan_port = base.port_by_name("lan0").port_no
    response = app.handle("POST", "/traffic/lan0", body)
    assert response.status == 200
    assert response.body == {"injected": 4}
    assert lan_port not in calls["process"]
    assert calls["batch_from"].count(lan_port) == 1
    assert base.ports[lan_port].rx_packets == 4


def test_rest_injection_error_paths():
    node, _lan, _wan = _deployed_node()
    app = RestApp(node)
    good = frames(1)[0].to_bytes().hex()
    assert app.handle("POST", "/traffic/nope0",
                      f'{{"frames": ["{good}"]}}'.encode()).status == 404
    assert app.handle("POST", "/traffic/lan0",
                      b'{"frames": []}').status == 400
    assert app.handle("POST", "/traffic/lan0",
                      b'{"frames": ["zz"]}').status == 400
    assert app.handle("POST", "/traffic/lan0",
                      b'{"frames": ["abcd"]}').status == 400  # truncated
    assert app.handle("POST", "/traffic/lan0", b'{}').status == 400
    # Nothing was injected by any rejected request.
    assert node.steering.base.datapath.rx_packets == 0


# -- namespace / bridge batch sinks ----------------------------------------------

def _stack_pair(name):
    """A namespace with one device; returns (namespace, wire side)."""
    from repro.linuxnet.host import LinuxHost

    host = LinuxHost(hostname=f"h-{name}")
    ns = host.add_namespace(f"ns-{name}")
    pair = VethPair(f"{name}-in", f"{name}-wire")
    ns.add_device(pair.a)
    pair.a.add_address("10.0.0.2", 24)
    pair.a.set_up()
    pair.b.set_up()
    return ns, pair.b


def _udp_to_stack(count):
    return [make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                           3000 + i, 4000, b"p%d" % i)
            for i in range(count)]


def test_namespace_batch_sink_equals_per_frame_path():
    ns_batch, wire_batch = _stack_pair("ba")
    ns_single, wire_single = _stack_pair("si")
    for ns in (ns_batch, ns_single):
        ns.bind_udp(4000, lambda namespace, packet, dgram: None)

    batch = _udp_to_stack(5) + [
        # one non-IPv4 frame and one truncated IPv4 payload
        type(batch_frame := _udp_to_stack(1)[0])(
            dst=batch_frame.dst, src=batch_frame.src,
            ethertype=0x86DD, payload=b"v6?"),
    ]
    wire_batch.transmit_batch(batch)
    for frame in batch:
        wire_single.transmit(frame)

    for attr in ("rx_delivered", "rx_bad_packets", "rx_dropped_filter",
                 "rx_no_route", "tx_sent"):
        assert getattr(ns_batch, attr) == getattr(ns_single, attr), attr
    assert ns_batch.rx_delivered == 5
    assert ns_batch.rx_bad_packets == 1
    device_batch = ns_batch.device("ba-in")
    device_single = ns_single.device("si-in")
    assert device_batch.rx_packets == device_single.rx_packets
    assert device_batch.rx_bytes == device_single.rx_bytes


def test_bridge_batch_sink_equals_per_frame_path():
    from repro.linuxnet.bridge import Bridge

    def build(tag):
        bridge = Bridge(f"br-{tag}")
        ports = []
        sinks = []
        for i in range(3):
            pair = VethPair(f"{tag}-p{i}", f"{tag}-w{i}")
            pair.a.set_up()
            pair.b.set_up()
            seen = []
            pair.b.attach_handler(
                lambda dev, fr, log=seen: log.append(fr))
            bridge.add_port(pair.a)
            ports.append(pair.b)
            sinks.append(seen)
        return bridge, ports, sinks

    macs = [MacAddress(f"02:bb:00:00:00:0{i}") for i in range(3)]

    def traffic(ports):
        # Learn every MAC, then a unicast burst plus one flood.
        for i, port in enumerate(ports):
            port.transmit(make_udp_frame(macs[i], macs[(i + 1) % 3],
                                         "10.0.0.1", "10.0.0.2",
                                         1, 2, b"learn"))
        return [make_udp_frame(macs[0], macs[1], "10.0.0.1", "10.0.0.2",
                               10 + i, 20, b"u%d" % i) for i in range(4)] \
            + [make_udp_frame(macs[0], MacAddress("ff:ff:ff:ff:ff:ff"),
                              "10.0.0.1", "255.255.255.255", 1, 2,
                              b"flood")] \
            + [make_udp_frame(macs[0], macs[2], "10.0.0.1", "10.0.0.2",
                              30, 40, b"other-port")]

    bridge_b, ports_b, sinks_b = build("ba")
    burst = traffic(ports_b)
    ports_b[0].transmit_batch(burst)

    bridge_s, ports_s, sinks_s = build("si")
    for frame in traffic(ports_s):
        ports_s[0].transmit(frame)

    assert bridge_b.forwarded == bridge_s.forwarded
    assert bridge_b.flooded == bridge_s.flooded
    assert bridge_b.dropped == bridge_s.dropped
    for seen_b, seen_s in zip(sinks_b, sinks_s):
        assert [bytes(f.to_bytes()) for f in seen_b] \
            == [bytes(f.to_bytes()) for f in seen_s]
    # FDB learned identically.
    assert {(int(e.mac), e.packets) for e in bridge_b.fdb_entries()} \
        == {(int(e.mac), e.packets) for e in bridge_s.fdb_entries()}
