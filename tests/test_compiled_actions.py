"""Compiled action pipelines ≡ the interpreted reference loop.

Property-based equivalence: for random action lists (including the
fused steering shapes, the generic opcode fallback, error cases like
pop-on-untagged, and drop-only lists) and random frames, the closure
from :func:`compile_actions` must produce the identical emissions,
packet-in punts and error/drop counters as
:meth:`Datapath.execute_interpreted`.

Also covers the compiled-entry cache contract (compile at
construction, :meth:`FlowEntry.invalidate` after rebinding) and the
small-table bypass / two-level index mode switch around
:data:`SMALL_TABLE_THRESHOLD`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.switch import (
    Controller,
    Datapath,
    FlowEntry,
    FlowMatch,
    FlowTable,
    Output,
    PopVlan,
    PushVlan,
    SetField,
)
from repro.switch.actions import compile_actions
from repro.switch.flowtable import SMALL_TABLE_THRESHOLD

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")
MACS = ["02:00:00:00:00:0a", "02:00:00:00:00:0b"]

action_strategy = st.one_of(
    st.sampled_from([Output(2), Output(3), Controller(), PopVlan()]),
    st.builds(PushVlan, vid=st.integers(min_value=1, max_value=5)),
    st.builds(SetField, field=st.sampled_from(["eth_src", "eth_dst"]),
              value=st.sampled_from(MACS)),
    st.builds(SetField, field=st.just("vlan_vid"),
              value=st.integers(min_value=1, max_value=5)),
)


@st.composite
def frame_strategy(draw):
    vlan = draw(st.one_of(st.none(),
                          st.integers(min_value=1, max_value=5)))
    sport = draw(st.integers(min_value=1000, max_value=1004))
    return make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                          sport, 2000, b"x", vlan=vlan)


def run_actions(actions, frames, compiled):
    """Execute ``actions`` on every frame; return all observable effects."""
    dp = Datapath(1)
    entry = FlowEntry(match=FlowMatch(), actions=actions)
    emissions = []
    punts = []
    dp.packet_in_handler = lambda d, port, fr: punts.append((port, fr))

    def emit(out_port, in_port, frame):
        emissions.append((out_port, in_port, frame))

    for frame in frames:
        if compiled:
            entry.compiled(dp, 7, frame, emit)
        else:
            dp.execute_interpreted(entry.actions, 7, frame, emit)
    return emissions, punts, dp.dropped, dp.action_errors


@given(actions=st.lists(action_strategy, min_size=0, max_size=5),
       frames=st.lists(frame_strategy(), min_size=1, max_size=4))
@settings(max_examples=200, deadline=None)
def test_compiled_equals_interpreted(actions, frames):
    assert run_actions(tuple(actions), frames, compiled=True) \
        == run_actions(tuple(actions), frames, compiled=False)


def test_empty_action_list_drops():
    emissions, punts, dropped, errors = run_actions(
        (), [make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                            1000, 2000, b"x")], compiled=True)
    assert emissions == [] and punts == []
    assert dropped == 1 and errors == 0


def test_unknown_action_fails_at_compile_time():
    with pytest.raises(TypeError):
        compile_actions(("not-an-action",))


@pytest.mark.parametrize("actions,expected", [
    ((Output(2),), False),
    ((Controller(),), False),
    ((), False),
    ((Output(2), Output(3), Controller()), False),
    ((PushVlan(5), Output(2)), True),
    ((PopVlan(), Output(2)), True),
    ((PopVlan(), PushVlan(5), Output(2)), True),
    ((SetField("eth_dst", "02:00:00:00:00:99"), Output(2)), True),
    ((SetField("eth_dst", "02:00:00:00:00:99"), PushVlan(5), Output(2)),
     True),
    ((SetField("vlan_vid", 7), Output(2)), True),
    ((PushVlan(5),), True),  # drop-only but still rewrites
])
def test_compiled_program_mutates_tag(actions, expected):
    """``mutates`` is True exactly when the list contains a transform —
    the tag the zero-reparse batch path relies on: a non-mutating
    program must only ever emit the ingress frame object itself."""
    program = compile_actions(actions)
    assert program.mutates is expected
    if not expected and any(isinstance(a, Output) for a in actions):
        emitted = []
        program(Datapath(1), 1, FRAME := make_udp_frame(
            MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", 1000, 2000, b"x"),
            lambda out, inp, fr: emitted.append(fr))
        assert all(fr is FRAME for fr in emitted)


def _count_mac_builds(monkeypatch):
    from repro.switch import actions as actions_module

    original = actions_module.MacAddress
    calls = [0]

    class CountingMac(original):
        def __init__(self, value):
            calls[0] += 1
            super().__init__(value)

    monkeypatch.setattr(actions_module, "MacAddress", CountingMac)
    return calls


@pytest.mark.parametrize("actions", [
    (SetField("eth_dst", "02:00:00:00:00:99"), Output(2)),
    (SetField("eth_src", "02:00:00:00:00:98"), Output(2)),
    (SetField("eth_dst", "02:00:00:00:00:99"), PushVlan(5), Output(2)),
])
def test_setfield_builds_mac_target_once_per_install(monkeypatch, actions):
    """Regression for the per-frame MacAddress rebuild: the compiled
    closure must allocate the set-field target exactly once, at
    flow-install time, no matter how many frames it executes on."""
    calls = _count_mac_builds(monkeypatch)
    entry = FlowEntry(match=FlowMatch(), actions=actions)
    assert calls[0] == 1
    dp = Datapath(1)
    emitted = []
    for index in range(50):
        entry.compiled(dp, 1, make_udp_frame(
            MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", 1000 + index, 2000,
            b"x"), lambda out, inp, fr: emitted.append(fr))
    assert calls[0] == 1  # still the single install-time build
    assert len(emitted) == 50
    want = actions[0].value
    field = "dst" if actions[0].field == "eth_dst" else "src"
    assert all(str(getattr(fr, field)) == want for fr in emitted)


def test_flow_entry_pickles_and_recompiles():
    import pickle
    entry = FlowEntry(match=FlowMatch(in_port=1, ip_dst="10.0.0.0/8"),
                      actions=(PushVlan(9), Output(2)), priority=7)
    entry.packets = 3
    clone = pickle.loads(pickle.dumps(entry))
    assert clone.match == entry.match
    assert clone.actions == entry.actions
    assert (clone.priority, clone.packets) == (7, 3)
    # The closure was dropped on pickle and rebuilt on unpickle.
    assert callable(clone.compiled)
    frame = make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                           1000, 2000, b"x")
    emissions = []
    clone.compiled(Datapath(1), 1, frame,
                   lambda out, inp, fr: emissions.append((out, fr.vlan)))
    assert emissions == [(2, 9)]


def test_entry_compiles_at_construction_and_table_add_keeps_cache():
    entry = FlowEntry(match=FlowMatch(in_port=1), actions=[Output(2)])
    assert entry.actions == (Output(2),)  # normalized to a tuple
    compiled = entry.compiled
    assert callable(compiled)
    table = FlowTable()
    table.add(entry)
    assert entry.compiled is compiled  # add() does not recompile


def test_invalidate_recompiles_after_rebinding():
    dp = Datapath(1)
    dp.add_port("in")
    dp.add_port("two")
    dp.add_port("three")
    entry = FlowEntry(match=FlowMatch(in_port=1), actions=(Output(2),))
    dp.install(entry)
    frame = make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                           1000, 2000, b"x")
    dp.process(1, frame)
    two, three = dp.ports[2], dp.ports[3]
    assert (two.tx_packets, three.tx_packets) == (1, 0)
    # Rebinding alone is unsupported: the cached program still runs.
    entry.actions = (Output(3),)
    dp.process(1, frame)
    assert (two.tx_packets, three.tx_packets) == (2, 0)
    entry.invalidate()
    dp.process(1, frame)
    assert (two.tx_packets, three.tx_packets) == (2, 1)


def frame_for(index):
    return make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                          1000, 2000, b"x", vlan=100 + index)


def test_mode_switch_around_small_table_threshold():
    """The table serves identical results as it crosses the threshold
    in both directions, with the oracle cross-check on throughout."""
    table = FlowTable()
    table.oracle = True
    entries = []
    for index in range(SMALL_TABLE_THRESHOLD + 2):
        entry = FlowEntry(
            match=FlowMatch(in_port=1, vlan_vid=100 + index),
            actions=(Output(2),))
        entries.append(entry)

    def checked_lookup(index):
        parsed = parse_frame(frame_for(index))
        found = table.lookup(1, parsed, count=False)
        assert found is table.lookup_linear(1, parsed)
        return found

    for count, entry in enumerate(entries, start=1):
        table.add(entry)
        assert table.index_active == (count > SMALL_TABLE_THRESHOLD)
        assert checked_lookup(count - 1) is entry
    # Shrink back under the threshold: bypass mode resumes.
    while len(table) > SMALL_TABLE_THRESHOLD - 1:
        victim = entries[len(table) - 1]
        table.delete(match=victim.match, priority=victim.priority,
                     strict=True)
    assert not table.index_active
    assert checked_lookup(0) is entries[0]
    assert checked_lookup(len(table) + 1) is None  # deleted vid misses


def test_forced_index_mode_matches_bypass_results():
    indexed = FlowTable(small_table_threshold=0)
    bypassed = FlowTable()
    for table in (indexed, bypassed):
        table.oracle = True
        for index in range(6):
            table.add(FlowEntry(
                match=FlowMatch(in_port=1, vlan_vid=100 + index),
                actions=(Output(2),)))
    assert indexed.index_active and not bypassed.index_active
    for index in range(7):
        parsed = parse_frame(frame_for(index))
        left = indexed.lookup(1, parsed, count=False)
        right = bypassed.lookup(1, parsed, count=False)
        assert (left is None) == (right is None)
        if left is not None:
            assert left.match == right.match
