"""Control-plane churn harness: tier-1 smoke + the perf-marked bench.

The ``perf``-marked test is the 1k-graph churn entry point: it writes
``BENCH_controlplane.json`` next to the dataplane artifact (the
directory of ``--bench-json``) and asserts :func:`check_results` — in
``--quick`` mode it runs the same scenario at the CI smoke size and
leaves the artifact untouched.  The unmarked tests keep the harness
and its gates covered in tier-1 with the quick fleet.
"""

import json
import os

import pytest

from repro.perf.controlplane import (
    CONTROLPLANE_MAX_CONVERGE_TICKS,
    check_results,
    run_controlplane_bench,
)
from repro.perf.dataplane import write_bench_json


@pytest.fixture(scope="module")
def quick_results():
    return run_controlplane_bench(quick=True)


def test_quick_fleet_converges_and_gates(quick_results):
    """The tier-1 smoke leg: the quick fleet deploys, churns and
    converges within the exact tick gates, policies survive re-PUTs,
    and nothing is dropped from the sharded journal."""
    assert quick_results["meta"]["quick"] is True
    assert quick_results["deploy"]["ticks_to_converge"] <= \
        CONTROLPLANE_MAX_CONVERGE_TICKS
    assert quick_results["journal"]["sharded"] is True
    check_results(quick_results)
    json.dumps(quick_results)  # JSON-clean


def test_gates_catch_convergence_regression(quick_results):
    doctored = json.loads(json.dumps(quick_results))
    doctored["deploy"]["ticks_to_converge"] = 7
    with pytest.raises(AssertionError, match="productive ticks"):
        check_results(doctored)
    doctored = json.loads(json.dumps(quick_results))
    doctored["churn_rounds"][0]["converged"] = False
    with pytest.raises(AssertionError, match="never converged"):
        check_results(doctored)


def test_gates_catch_policy_and_journal_regressions(quick_results):
    doctored = json.loads(json.dumps(quick_results))
    doctored["policies"]["preserved_after_replut"] = 0
    with pytest.raises(AssertionError, match="persisted policies"):
        check_results(doctored)
    doctored = json.loads(json.dumps(quick_results))
    doctored["journal"]["dropped_total"] = 12
    with pytest.raises(AssertionError, match="journal events dropped"):
        check_results(doctored)
    doctored = json.loads(json.dumps(quick_results))
    doctored["tick_errors"] = 2
    with pytest.raises(AssertionError, match="tick error"):
        check_results(doctored)


def test_gates_catch_latency_regression(quick_results):
    doctored = json.loads(json.dumps(quick_results))
    doctored["tick_latency"]["mean_per_graph_s"] = 1.0
    with pytest.raises(AssertionError, match="ms/graph"):
        check_results(doctored)


@pytest.mark.perf
def test_controlplane_churn_bench(request):
    """The 1k-graph churn bench; writes ``BENCH_controlplane.json``.

    With ``--quick`` the fleet shrinks to the smoke size, the same
    gates run, and the artifact is left untouched (trajectory files
    always come from full runs).
    """
    quick = request.config.getoption("--quick")
    results = run_controlplane_bench(quick=quick)
    print(f"\n{results['graphs']} graphs / {results['shards']} shards: "
          f"deploy {results['deploy']['ticks_to_converge']} tick(s) in "
          f"{results['deploy']['total_seconds']:.2f}s, mean tick "
          f"{results['tick_latency']['mean_per_graph_s'] * 1e6:.0f} "
          f"us/graph")
    if not quick:
        bench_dir = os.path.dirname(
            request.config.getoption("--bench-json")) or "."
        path = os.path.join(bench_dir, "BENCH_controlplane.json")
        write_bench_json(results, path)
        print(f"wrote {path}")
        assert os.path.exists(path)
    check_results(results)
