"""Desired-state reconciliation: healing, targeted updates, journal.

The acceptance scenario: with a deployed chain graph, forcing one
instance unhealthy makes the reconciler converge back to the desired
graph within a bounded number of ticks — instance restarted or
re-placed, only that NF's steering rules reinstalled, flow counters on
untouched NFs preserved, and the full sequence visible in the event
journal.
"""

import pytest

from repro.catalog.templates import Technology
from repro.compute.base import ComputeDriver, DriverError, Health
from repro.compute.instances import InstanceState
from repro.core import ComputeNode, OrchestrationError
from repro.net import MacAddress, make_udp_frame
from repro.nffg.model import Nffg
from repro.resources.capabilities import NodeCapabilities
from repro.rest.app import RestApp
from repro.rest.client import RestClient

CLIENT = MacAddress("02:aa:00:00:00:01")
REMOTE = MacAddress("02:aa:00:00:00:02")


class FlakyDriver(ComputeDriver):
    """Docker-flavored driver with injectable health failures."""

    technology = Technology.DOCKER
    netns_prefix = "flaky"

    def __init__(self, host, restartable=True):
        super().__init__(host)
        self.sick = set()           # instance_ids that probe unhealthy
        self.restartable = restartable
        self.restarts = 0

    def create(self, spec):
        instance = super().create(spec)
        self.sick.discard(spec.instance_id)  # fresh containers are well
        return instance

    def restart(self, instance):
        if not self.restartable:
            raise DriverError("injected: process core-dumps on restart")
        super().restart(instance)
        self.restarts += 1
        self.sick.discard(instance.instance_id)

    def health(self, instance):
        if instance.instance_id in self.sick:
            return Health(False, "injected crash")
        return super().health(instance)


def heal_node(restartable=True):
    node = ComputeNode("heal-test",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    driver = FlakyDriver(node.host, restartable=restartable)
    node.compute._drivers[Technology.DOCKER] = driver
    return node, driver


def chain_graph():
    graph = Nffg(graph_id="chain", name="heal chain")
    graph.add_nf("nat1", "nat", technology="docker", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1"})
    graph.add_nf("dpi1", "dpi", technology="docker")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:wan", "vnf:dpi1:in")
    graph.add_flow_rule("r3", "vnf:dpi1:out", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan")
    return graph


def entries_for(node, graph_id, rule_id):
    """The installed flow entries realizing one big-switch rule."""
    steering = node.steering
    network = steering.graph_network(graph_id)
    found = []
    for controller, match, priority in network.installed[rule_id].segments:
        datapath = (steering.base.datapath
                    if controller is steering.base_controller
                    else network.lsi.datapath)
        for entry in datapath.table:
            if entry.match == match and entry.priority == priority:
                found.append(entry)
    return found


def bump_r1(node):
    node.steering.inject_batch("lan0", [make_udp_frame(
        CLIENT, REMOTE, "192.168.1.5", "8.8.8.8", 1111, 53, b"ping")])


def journal_kinds(node, graph_id):
    return [event.kind for event in node.orchestrator.events(graph_id)]


# -- healing -----------------------------------------------------------------------

def test_restart_heal_converges_without_touching_rules():
    node, driver = heal_node()
    node.deploy(chain_graph())
    mods_before = (node.steering.base_controller.flow_mods_sent,
                   node.steering.graph_network("chain")
                   .controller.flow_mods_sent)
    driver.sick.add("chain-dpi1")

    result = node.orchestrator.reconcile("chain")

    assert result.converged and result.ticks <= 3
    assert driver.restarts == 1
    assert node.compute.get("chain-dpi1").is_running
    # Restart-in-place keeps every flow entry: zero extra flow-mods.
    assert mods_before == (node.steering.base_controller.flow_mods_sent,
                           node.steering.graph_network("chain")
                           .controller.flow_mods_sent)
    kinds = journal_kinds(node, "chain")
    assert "health-failed" in kinds and "healed" in kinds
    assert kinds[-1] == "converged"


def test_recreate_heal_reinstalls_only_the_failed_nfs_rules():
    node, driver = heal_node(restartable=False)
    node.deploy(chain_graph())
    bump_r1(node)
    r1_before = [(e.entry_id, e.packets) for e in
                 entries_for(node, "chain", "r1")]
    r4_before = [e.entry_id for e in entries_for(node, "chain", "r4")]
    r2_before = [e.entry_id for e in entries_for(node, "chain", "r2")]
    assert any(packets == 1 for _, packets in r1_before)
    old_instance = node.compute.get("chain-dpi1")
    driver.sick.add("chain-dpi1")

    result = node.orchestrator.reconcile("chain")

    assert result.converged and result.ticks <= 4
    # A fresh instance replaced the dead one.
    replacement = node.compute.get("chain-dpi1")
    assert replacement is not old_instance and replacement.is_running
    assert old_instance.state is InstanceState.DESTROYED
    # Untouched NF rules survived with identical entries and counters.
    assert [(e.entry_id, e.packets) for e in
            entries_for(node, "chain", "r1")] == r1_before
    assert [e.entry_id for e in entries_for(node, "chain", "r4")] \
        == r4_before
    # The failed NF's rules were reinstalled (new entries)...
    r2_after = [e.entry_id for e in entries_for(node, "chain", "r2")]
    assert r2_after and not set(r2_after) & set(r2_before)
    # ...and the graph is whole: all four rules realized, traffic flows.
    assert node.orchestrator.deployed["chain"].rules_installed == 4
    bump_r1(node)
    assert any(e.packets == 2 for e in entries_for(node, "chain", "r1"))
    kinds = journal_kinds(node, "chain")
    assert "health-failed" in kinds
    assert "step-failed" in kinds        # the refused restart
    healed = [event for event in node.orchestrator.events("chain")
              if event.kind == "healed"]
    assert healed and healed[-1].detail == "recreated"


def test_accountant_stays_balanced_across_recreate():
    node, driver = heal_node(restartable=False)
    node.deploy(chain_graph())
    owners_before = sorted(a.owner for a in node.accountant.allocations())
    driver.sick.add("chain-dpi1")
    node.orchestrator.reconcile("chain")
    assert sorted(a.owner for a in node.accountant.allocations()) \
        == owners_before


def test_flapping_instance_exhausts_tick_budget():
    node, driver = heal_node()
    node.deploy(chain_graph())

    class AlwaysSick(FlakyDriver):
        def health(self, instance):
            return Health(False, "chronically ill")

    node.compute._drivers[Technology.DOCKER] = AlwaysSick(node.host)
    with pytest.raises(OrchestrationError, match="did not converge"):
        node.orchestrator.reconcile("chain")


# -- targeted updates ---------------------------------------------------------------

def test_update_leaves_unchanged_rules_installed():
    node, driver = heal_node()
    node.deploy(chain_graph())
    bump_r1(node)
    before = {rule_id: [(e.entry_id, e.packets) for e in
                        entries_for(node, "chain", rule_id)]
              for rule_id in ("r1", "r2", "r3", "r4")}
    base_mods = node.steering.base_controller.flow_mods_sent

    updated = chain_graph()
    updated.add_flow_rule("r5", "endpoint:wan", "vnf:dpi1:in",
                          ip_dst="10.9.0.0/16")
    node.update(updated)

    for rule_id, entries in before.items():
        assert [(e.entry_id, e.packets) for e in
                entries_for(node, "chain", rule_id)] == entries
    assert node.orchestrator.deployed["chain"].rules_installed == 5
    assert node.steering.base_controller.flow_mods_sent >= base_mods


def test_update_flow_mod_delta_is_only_the_diff():
    node, driver = heal_node()
    node.deploy(chain_graph())
    network = node.steering.graph_network("chain")
    before = (node.steering.base_controller.flow_mods_sent
              + network.controller.flow_mods_sent)

    updated = chain_graph()
    updated.add_flow_rule("r5", "endpoint:wan", "vnf:dpi1:in",
                          ip_dst="10.9.0.0/16")
    node.update(updated)

    after = (node.steering.base_controller.flow_mods_sent
             + network.controller.flow_mods_sent)
    assert after - before == len(network.installed["r5"].segments)

    # A no-op update is free: zero flow-mods, zero lifecycle churn.
    node.update(updated)
    assert (node.steering.base_controller.flow_mods_sent
            + network.controller.flow_mods_sent) == after


def test_update_removing_nf_removes_its_ports_and_rules():
    node, driver = heal_node()
    node.deploy(chain_graph())
    network = node.steering.graph_network("chain")
    ports_with_dpi = len(network.lsi.datapath.ports)

    trimmed = chain_graph()
    trimmed.nfs = [spec for spec in trimmed.nfs if spec.nf_id != "dpi1"]
    trimmed.flow_rules = [rule for rule in trimmed.flow_rules
                          if rule.rule_id in ("r1", "r4")]
    node.update(trimmed)

    assert "chain-dpi1" not in [i.instance_id
                                for i in node.compute.instances()]
    assert sorted(network.installed) == ["r1", "r4"]
    assert len(network.lsi.datapath.ports) < ports_with_dpi
    assert sorted(a.owner for a in node.accountant.allocations()) \
        == ["chain/nat1"]


# -- journal + REST + plans ----------------------------------------------------------

def test_journal_records_full_lifecycle():
    node, driver = heal_node()
    node.deploy(chain_graph())
    kinds = journal_kinds(node, "chain")
    assert kinds[0] == "desired-set"
    assert "plan" in kinds and "step-ok" in kinds
    assert kinds[-1] == "converged"
    node.undeploy("chain")
    kinds = journal_kinds(node, "chain")
    assert "desired-cleared" in kinds and "removed" in kinds


def test_plan_steps_are_inspectable():
    node, driver = heal_node()
    node.deploy(chain_graph())
    plan = node.orchestrator.reconciler.last_plans["chain"]
    assert plan.converged
    driver.sick.add("chain-dpi1")
    node.orchestrator.tick("chain")
    plan = node.orchestrator.reconciler.last_plans["chain"]
    assert [step.kind for step in plan.steps] == ["restart"]
    assert plan.steps[0].status == "done"
    assert plan.steps[0].to_dict()["nf-id"] == "dpi1"


def test_rest_events_and_reconcile_endpoints():
    node, driver = heal_node()
    client = RestClient(RestApp(node))
    client.deploy_graph(chain_graph())
    events = client.graph_events("chain")
    assert events[0]["kind"] == "desired-set"
    driver.sick.add("chain-dpi1")
    result = client.reconcile_graph("chain")
    assert result["converged"] is True
    assert result["graph-id"] == "chain"
    assert any(event["kind"] == "healed"
               for event in client.graph_events("chain"))
    # Journal outlives the graph; unknown graphs 404.
    client.undeploy_graph("chain")
    assert client.graph_events("chain")
    assert client.get("/graphs/ghost/events").status == 404
    assert client.post("/graphs/ghost/reconcile").status == 404


def test_status_reports_convergence_and_desired():
    node, driver = heal_node()
    node.deploy(chain_graph())
    status = node.orchestrator.status("chain")
    assert status["converged"] is True
    assert status["desired-nfs"] == 2
    assert status["nfs"]["dpi1"]["state"] == "running"


# -- driver health probes -------------------------------------------------------------

def test_base_health_detects_missing_namespace():
    node, driver = heal_node()
    node.deploy(chain_graph())
    instance = node.compute.get("chain-dpi1")
    del node.host.namespaces[instance.netns]
    verdict = node.compute.health("chain-dpi1")
    assert not verdict.healthy and "gone" in verdict.detail


def test_dpdk_health_detects_dead_poll_loop():
    node = ComputeNode("dpdk-health",
                       capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    graph = Nffg(graph_id="fast")
    graph.add_nf("fwd", "l2-forwarder-dpdk", technology="dpdk")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:fwd:in")
    graph.add_flow_rule("r2", "vnf:fwd:out", "endpoint:wan")
    node.deploy(graph)
    instance = node.compute.get("fast-fwd")
    assert node.compute.health("fast-fwd").healthy
    namespace = node.host.namespace(instance.netns)
    for name in instance.inner_devices.values():
        namespace.device(name).detach_handler()
    verdict = node.compute.health("fast-fwd")
    assert not verdict.healthy and "poll loop" in verdict.detail
    # And the reconciler brings it back.
    result = node.orchestrator.reconcile("fast")
    assert result.converged
    assert node.compute.health("fast-fwd").healthy
