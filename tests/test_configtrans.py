"""Config-translation layer tests (the paper's future-work feature)."""

import pytest

from repro.nnf.configtrans import (
    GENERIC_KEYS,
    TranslationError,
    address_commands,
    parse_port_list,
    register_translator,
    translate,
    validate_generic,
)
from repro.nnf.plugin import PluginContext


def ctx(config=None, ports=None):
    return PluginContext(instance_id="i", netns="ns",
                         ports=ports or {"lan": "eth0", "wan": "eth1"},
                         config=config or {})


class TestPortList:
    def test_parses_mixed_list(self):
        assert parse_port_list("tcp:22, udp:53") == [("tcp", 22),
                                                     ("udp", 53)]

    def test_empty_entries_skipped(self):
        assert parse_port_list("udp:53,,") == [("udp", 53)]

    def test_bad_proto_rejected(self):
        with pytest.raises(TranslationError):
            parse_port_list("icmp:0")

    def test_bad_port_rejected(self):
        with pytest.raises(TranslationError):
            parse_port_list("tcp:abc")


class TestValidateGeneric:
    def test_known_keys_pass(self):
        assert validate_generic({"lan.address": "10.0.0.1/24",
                                 "ipsec.psk": "x"}) == []

    def test_unknown_keys_reported(self):
        unknown = validate_generic({"lan.address": "10.0.0.1/24",
                                    "frobnicate": "1", "a.b": "2"})
        assert unknown == ["a.b", "frobnicate"]

    def test_vocabulary_is_closed(self):
        assert "lan.address" in GENERIC_KEYS
        assert "dns.static" in GENERIC_KEYS


class TestAddressCommands:
    def test_addresses_and_gateway(self):
        commands = address_commands(ctx({
            "lan.address": "192.168.1.1/24",
            "wan.address": "203.0.113.2/24",
            "gateway": "203.0.113.1"}))
        assert len(commands) == 3
        assert any("192.168.1.1/24 dev eth0" in c for c in commands)
        assert any("default via 203.0.113.1 dev eth1" in c
                   for c in commands)

    def test_address_for_missing_port_rejected(self):
        with pytest.raises(TranslationError, match="no 'wan' port"):
            address_commands(ctx({"wan.address": "1.2.3.4/24"},
                                 ports={"lan": "eth0"}))

    def test_gateway_falls_back_to_first_port(self):
        commands = address_commands(ctx({"gateway": "10.0.0.1"},
                                        ports={"only": "eth0"}))
        assert commands == ["ip netns exec ns ip route add default "
                            "via 10.0.0.1 dev eth0"]


class TestTranslatorRegistry:
    def test_default_translation_is_address_subset(self):
        commands = translate("unknown-type",
                             ctx({"lan.address": "10.0.0.1/24"}))
        assert commands == address_commands(
            ctx({"lan.address": "10.0.0.1/24"}))

    def test_registered_translator_wins(self):
        def custom(context):
            return [f"echo custom for {context.instance_id}"]

        register_translator("weird-nf", custom)
        assert translate("weird-nf", ctx()) == ["echo custom for i"]
