"""Cost model, pipeline, memory model and Table 1 driver tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.templates import Technology
from repro.perf.costmodel import CostModel, NfWorkload
from repro.perf.iperf import run_iperf
from repro.perf.memory import MemoryModel
from repro.perf.pipeline import PacketPipeline, Stage, measure_throughput
from repro.perf.table1 import PAPER_TABLE1, ipsec_cpe_graph, run_table1
from repro.sim import Simulator


class TestCostModel:
    def test_vm_slower_than_native_for_every_workload(self):
        model = CostModel()
        for workload in (NfWorkload.ipsec_esp(), NfWorkload.nat(),
                         NfWorkload.firewall(), NfWorkload.bridge()):
            native = model.nf_seconds(Technology.NATIVE, workload, 1500)
            vm = model.nf_seconds(Technology.VM, workload, 1500,
                                  uses_kernel_datapath=False)
            assert vm.total > native.total, workload.name

    def test_docker_close_to_native(self):
        model = CostModel()
        workload = NfWorkload.ipsec_esp()
        native = model.nf_seconds(Technology.NATIVE, workload, 1500)
        docker = model.nf_seconds(Technology.DOCKER, workload, 1500)
        assert 1.0 < docker.total / native.total < 1.01

    def test_dpdk_cheapest_per_packet(self):
        model = CostModel()
        workload = NfWorkload.bridge()
        dpdk = model.nf_seconds(Technology.DPDK, workload, 1500)
        native = model.nf_seconds(Technology.NATIVE, workload, 1500)
        assert dpdk.total < native.total

    def test_marking_and_tagging_costs_added(self):
        model = CostModel()
        workload = NfWorkload.nat()
        plain = model.nf_seconds(Technology.NATIVE, workload, 1500)
        shared = model.nf_seconds(Technology.NATIVE, workload, 1500,
                                  marking_rules=4, tagged_port=True)
        expected = (4 * model.mark_rule_seconds
                    + 2 * model.vlan_op_seconds)
        assert shared.total - plain.total == pytest.approx(expected)

    def test_chain_adds_switch_path_and_lookups(self):
        model = CostModel()
        workload = NfWorkload.nat()
        hop = model.nf_seconds(Technology.NATIVE, workload, 1500)
        chain1 = model.chain_seconds([hop])
        chain3 = model.chain_seconds([hop, hop, hop])
        assert chain3.total > 3 * hop.total
        assert chain3.components["extra-lookups"] == pytest.approx(
            2 * model.extra_lookup_seconds)
        assert chain1.components["switch-path"] == pytest.approx(
            model.switch_path_seconds)

    def test_closed_form_throughput(self):
        assert CostModel.throughput_mbps(12e-6, 1500) == pytest.approx(
            1000.0)
        with pytest.raises(ValueError):
            CostModel.throughput_mbps(0.0, 1500)

    @given(st.integers(min_value=64, max_value=9000))
    @settings(max_examples=25)
    def test_cost_monotone_in_frame_size(self, frame_bytes):
        model = CostModel()
        workload = NfWorkload.ipsec_esp()
        small = model.nf_seconds(Technology.NATIVE, workload, 64)
        big = model.nf_seconds(Technology.NATIVE, workload, frame_bytes)
        assert big.total >= small.total


class TestPipeline:
    def test_des_matches_closed_form(self):
        service = 10e-6
        result = measure_throughput([Stage("s", service)],
                                    frame_bytes=1500, duration=0.2)
        expected = CostModel.throughput_mbps(service, 1500)
        assert result.throughput_mbps == pytest.approx(expected, rel=0.02)

    def test_two_flows_share_the_core_fairly(self):
        sim = Simulator()
        pipeline = PacketPipeline(sim, cores=1)
        pipeline.add_flow("a", [Stage("s", 10e-6)])
        pipeline.add_flow("b", [Stage("s", 10e-6)])
        a, b = pipeline.run(duration=0.2)
        solo = measure_throughput([Stage("s", 10e-6)],
                                  duration=0.2).throughput_mbps
        assert a.throughput_mbps == pytest.approx(solo / 2, rel=0.05)
        assert b.throughput_mbps == pytest.approx(a.throughput_mbps,
                                                  rel=0.05)

    def test_second_core_doubles_aggregate(self):
        sim = Simulator()
        pipeline = PacketPipeline(sim, cores=2)
        pipeline.add_flow("a", [Stage("s", 10e-6)])
        pipeline.add_flow("b", [Stage("s", 10e-6)])
        a, b = pipeline.run(duration=0.2)
        solo = measure_throughput([Stage("s", 10e-6)],
                                  duration=0.2).throughput_mbps
        assert a.throughput_mbps == pytest.approx(solo, rel=0.05)
        assert b.throughput_mbps == pytest.approx(solo, rel=0.05)

    def test_latency_includes_queueing(self):
        sim = Simulator()
        pipeline = PacketPipeline(sim, cores=1)
        pipeline.add_flow("a", [Stage("s", 10e-6)], window=4)
        (result,) = pipeline.run(duration=0.1)
        # 4 in flight on one 10us server: ~40us sojourn each.
        assert result.mean_latency_seconds == pytest.approx(40e-6,
                                                            rel=0.1)

    def test_validation(self):
        sim = Simulator()
        pipeline = PacketPipeline(sim)
        with pytest.raises(ValueError):
            pipeline.add_flow("x", [])
        with pytest.raises(ValueError):
            pipeline.add_flow("x", [Stage("s", 1e-6)], frame_bytes=0)
        with pytest.raises(ValueError):
            Stage("bad", -1.0)
        pipeline.add_flow("ok", [Stage("s", 1e-6)])
        with pytest.raises(ValueError):
            pipeline.run(duration=0.01, warmup=0.02)


class TestMemoryModel:
    def test_table1_ram_column(self):
        model = MemoryModel()
        rss = 19.4
        assert model.runtime_mb(Technology.NATIVE, rss) == pytest.approx(
            PAPER_TABLE1["native"]["ram_mb"])
        assert model.runtime_mb(Technology.DOCKER, rss) == pytest.approx(
            PAPER_TABLE1["docker"]["ram_mb"])
        assert model.runtime_mb(Technology.VM, rss) == pytest.approx(
            PAPER_TABLE1["vm"]["ram_mb"])

    def test_breakdown_sums_to_total(self):
        model = MemoryModel()
        for technology in (Technology.NATIVE, Technology.DOCKER,
                           Technology.VM, Technology.DPDK):
            breakdown = model.breakdown(technology, 19.4)
            assert sum(breakdown.values()) == pytest.approx(
                model.runtime_mb(technology, 19.4))

    def test_vm_ram_independent_of_nf_rss(self):
        model = MemoryModel()
        assert model.runtime_mb(Technology.VM, 5.0) == model.runtime_mb(
            Technology.VM, 50.0)


class TestIperfAndTable1:
    def test_run_iperf_reports_breakdown(self):
        model = CostModel()
        chain = model.chain_seconds([model.nf_seconds(
            Technology.NATIVE, NfWorkload.nat(), 1500)])
        result = run_iperf(chain, duration=0.05)
        assert result.throughput_mbps > 0
        assert "kernel-stack" in result.breakdown
        assert result.probe_delivered  # no node given: vacuously true

    def test_ipsec_graph_is_valid(self):
        from repro.nffg.validate import validate_nffg
        validate_nffg(ipsec_cpe_graph("x", "native"))

    def test_table1_rows_complete(self):
        rows = run_table1(duration=0.05)
        assert [row.flavor for row in rows] == ["vm", "docker", "native"]
        for row in rows:
            assert row.probe_delivered and row.esp_on_wire
            assert row.throughput_mbps > 0

    def test_table1_shape_holds(self):
        rows = {row.flavor: row for row in run_table1(duration=0.05)}
        assert rows["vm"].throughput_mbps < rows["docker"].throughput_mbps
        assert rows["vm"].ram_mb > rows["docker"].ram_mb \
            > rows["native"].ram_mb
        assert rows["vm"].image_mb > rows["docker"].image_mb \
            > rows["native"].image_mb
