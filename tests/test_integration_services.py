"""Service-level integration tests beyond the NAT/IPsec core cases:
dnsmasq (daemon NNF with sockets), linuxbridge, graph updates that
reconfigure a live NNF, and a DPDK chain on a data-center node.
"""

import pytest

from repro.catalog.templates import Technology
from repro.core import ComputeNode, OrchestrationError
from repro.nffg.model import Nffg
from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.resources.capabilities import NodeCapabilities

CLIENT = MacAddress("02:aa:00:00:00:01")
REMOTE = MacAddress("02:aa:00:00:00:02")


@pytest.fixture
def node():
    node = ComputeNode("svc-test")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def sniff(wire):
    frames = []
    wire.attach_handler(lambda dev, frame: frames.append(frame))
    return frames


class TestDnsmasqNnf:
    def dhcp_graph(self):
        graph = Nffg(graph_id="dhcp")
        graph.add_nf("dns", "dhcp-server", config={
            "lan.address": "192.168.1.1/24",
            "dhcp.range": "192.168.1.100,192.168.1.110",
            "dns.static": "router.home=192.168.1.1,nas.home=192.168.1.20",
        })
        graph.add_endpoint("lan", "lan0")
        graph.add_flow_rule("r1", "endpoint:lan", "vnf:dns:lan")
        graph.add_flow_rule("r2", "vnf:dns:lan", "endpoint:lan")
        return graph

    def test_deployed_natively_and_answers_dns(self, node):
        record = node.deploy(self.dhcp_graph())
        assert record.placements["dns"].implementation.technology \
            is Technology.NATIVE
        replies = sniff(node.wire("lan0"))
        node.wire("lan0").transmit(make_udp_frame(
            CLIENT, REMOTE, "192.168.1.55", "192.168.1.1", 40000, 53,
            b"Q:nas.home"))
        assert len(replies) == 1
        parsed = parse_frame(replies[0])
        assert parsed.udp.payload == b"A:192.168.1.20"

    def test_unknown_name_gets_nx(self, node):
        node.deploy(self.dhcp_graph())
        replies = sniff(node.wire("lan0"))
        node.wire("lan0").transmit(make_udp_frame(
            CLIENT, REMOTE, "192.168.1.55", "192.168.1.1", 40000, 53,
            b"Q:ghost.home"))
        assert parse_frame(replies[0]).udp.payload == b"NX"

    def test_dhcp_leases_are_stable_per_client(self, node):
        node.deploy(self.dhcp_graph())
        replies = sniff(node.wire("lan0"))
        # The modelled clients renew from an on-link address (the toy
        # protocol skips broadcast; see the plugin's docstring).
        for _ in range(2):
            node.wire("lan0").transmit(make_udp_frame(
                CLIENT, REMOTE, "192.168.1.200", "192.168.1.1", 68, 67,
                b"DISCOVER:aa:bb:cc:dd:ee:01"))
        node.wire("lan0").transmit(make_udp_frame(
            CLIENT, REMOTE, "192.168.1.201", "192.168.1.1", 68, 67,
            b"DISCOVER:aa:bb:cc:dd:ee:02"))
        offers = [parse_frame(f).udp.payload for f in replies]
        assert offers[0] == offers[1] == b"OFFER:192.168.1.100"
        assert offers[2] == b"OFFER:192.168.1.101"

    def test_exclusive_second_graph_gets_docker(self, node):
        node.deploy(self.dhcp_graph())
        node.add_physical_interface("lan1")
        second = self.dhcp_graph()
        second.graph_id = "dhcp2"
        second.endpoints[0] = type(second.endpoints[0])(
            ep_id="lan", interface="lan1")
        record = node.deploy(second)
        assert record.placements["dns"].implementation.technology \
            is Technology.DOCKER

    def test_undeploy_unbinds_daemon_sockets(self, node):
        node.deploy(self.dhcp_graph())
        record = node.orchestrator.deployed["dhcp"]
        netns = record.instances["dns"].netns
        namespace = node.host.namespace(netns)
        assert 53 in namespace._udp_handlers
        node.undeploy("dhcp")
        # Namespace destroyed alongside its daemon.
        assert netns not in node.host.namespaces


class TestBridgeNnf:
    def bridge_graph(self):
        graph = Nffg(graph_id="l2")
        graph.add_nf("br", "bridge")
        graph.add_endpoint("a", "lan0")
        graph.add_endpoint("b", "wan0")
        graph.add_flow_rule("r1", "endpoint:a", "vnf:br:p0")
        graph.add_flow_rule("r2", "vnf:br:p0", "endpoint:a")
        graph.add_flow_rule("r3", "vnf:br:p1", "endpoint:b")
        graph.add_flow_rule("r4", "endpoint:b", "vnf:br:p1")
        return graph

    def test_bridge_nnf_forwards_l2(self, node):
        record = node.deploy(self.bridge_graph())
        assert record.placements["br"].implementation.technology \
            is Technology.NATIVE
        out_b = sniff(node.wire("wan0"))
        node.wire("lan0").transmit(make_udp_frame(
            CLIENT, REMOTE, "10.0.0.1", "10.0.0.2", 1, 2, b"bridged"))
        assert len(out_b) == 1
        # L2 service: addresses untouched.
        parsed = parse_frame(out_b[0])
        assert parsed.ipv4.src == "10.0.0.1"
        assert parsed.udp.payload == b"bridged"

    def test_bridge_learns_and_returns(self, node):
        node.deploy(self.bridge_graph())
        out_a = sniff(node.wire("lan0"))
        out_b = sniff(node.wire("wan0"))
        node.wire("lan0").transmit(make_udp_frame(
            CLIENT, REMOTE, "10.0.0.1", "10.0.0.2", 1, 2, b"->"))
        node.wire("wan0").transmit(make_udp_frame(
            REMOTE, CLIENT, "10.0.0.2", "10.0.0.1", 2, 1, b"<-"))
        assert len(out_b) == 1 and len(out_a) == 1


class TestLiveUpdate:
    def firewall_graph(self, allow="udp:53"):
        graph = Nffg(graph_id="fwg")
        graph.add_nf("fw", "firewall", config={
            "lan.address": "192.168.1.1/24",
            "wan.address": "10.9.0.1/24",
            "gateway": "10.9.0.2",
            "firewall.allow": allow,
        })
        graph.add_endpoint("lan", "lan0")
        graph.add_endpoint("wan", "wan0")
        graph.add_flow_rule("r1", "endpoint:lan", "vnf:fw:lan")
        graph.add_flow_rule("r2", "vnf:fw:lan", "endpoint:lan")
        graph.add_flow_rule("r3", "vnf:fw:wan", "endpoint:wan")
        graph.add_flow_rule("r4", "endpoint:wan", "vnf:fw:wan",
                            ip_dst="10.9.0.0/24")
        return graph

    def send_probe(self, node, dport, payload):
        node.wire("lan0").transmit(make_udp_frame(
            CLIENT, REMOTE, "192.168.1.9", "203.0.113.9", 40000, dport,
            payload))

    def test_reconfigure_changes_policy_without_redeploy(self, node):
        node.deploy(self.firewall_graph(allow="udp:53"))
        egress = sniff(node.wire("wan0"))
        self.send_probe(node, 53, b"dns")
        self.send_probe(node, 123, b"ntp")
        assert [parse_frame(f).udp.payload for f in egress] == [b"dns"]
        instance_id = node.orchestrator.deployed["fwg"] \
            .instances["fw"].instance_id
        # Shared firewall: update is applied through the plugin's
        # update path on the same component instance.
        node.update(self.firewall_graph(allow="udp:53,udp:123"))
        self.send_probe(node, 123, b"ntp-2")
        assert parse_frame(egress[-1]).udp.payload == b"ntp-2"
        # Same instance survived the update.
        record = node.orchestrator.deployed["fwg"]
        assert record.instances["fw"].instance_id == instance_id

    def test_update_unknown_graph_rejected(self, node):
        with pytest.raises(OrchestrationError):
            node.update(self.firewall_graph())

    def test_update_adding_nf_brings_it_up(self, node):
        node.deploy(self.firewall_graph())
        updated = self.firewall_graph()
        updated.add_nf("dpi1", "dpi")
        updated.flow_rules = [r for r in updated.flow_rules
                              if r.rule_id not in ("r3",)]
        updated.add_flow_rule("r3a", "vnf:fw:wan", "vnf:dpi1:in")
        updated.add_flow_rule("r3b", "vnf:dpi1:out", "endpoint:wan")
        record = node.update(updated)
        assert record.instances["dpi1"].is_running
        egress = sniff(node.wire("wan0"))
        self.send_probe(node, 53, b"through-both")
        assert [parse_frame(f).udp.payload for f in egress] \
            == [b"through-both"]


class TestDpdkOnDatacenterNode:
    def test_dpdk_chain_forwards(self):
        node = ComputeNode(
            "dc", capabilities=NodeCapabilities.datacenter_server())
        node.add_physical_interface("in0")
        node.add_physical_interface("out0")
        graph = Nffg(graph_id="fastpath")
        graph.add_nf("fwd", "l2-forwarder-dpdk", technology="dpdk")
        graph.add_endpoint("a", "in0")
        graph.add_endpoint("b", "out0")
        graph.add_flow_rule("r1", "endpoint:a", "vnf:fwd:in")
        graph.add_flow_rule("r2", "vnf:fwd:out", "endpoint:b")
        record = node.deploy(graph)
        assert record.placements["fwd"].implementation.technology \
            is Technology.DPDK
        egress = sniff(node.wire("out0"))
        node.wire("in0").transmit(make_udp_frame(
            CLIENT, REMOTE, "1.1.1.1", "2.2.2.2", 1, 2, b"fast"))
        assert len(egress) == 1

    def test_dpdk_rejected_on_cpe(self):
        node = ComputeNode(
            "cpe", capabilities=NodeCapabilities.residential_cpe())
        node.add_physical_interface("in0")
        node.add_physical_interface("out0")
        graph = Nffg(graph_id="fastpath")
        graph.add_nf("fwd", "l2-forwarder-dpdk", technology="dpdk")
        graph.add_endpoint("a", "in0")
        graph.add_flow_rule("r1", "endpoint:a", "vnf:fwd:in")
        with pytest.raises(OrchestrationError):
            node.deploy(graph)
