"""NF-FG model, JSON codec, validation and diff tests."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.nffg.diff import diff_nffg
from repro.nffg.json_codec import (
    nffg_from_dict,
    nffg_from_json,
    nffg_to_dict,
    nffg_to_json,
)
from repro.nffg.model import Endpoint, Nffg, NfInstanceSpec, PortRef
from repro.nffg.validate import NffgValidationError, validate_nffg


def sample_graph() -> Nffg:
    graph = Nffg(graph_id="g1", name="sample")
    graph.add_nf("fw", "firewall", technology="native",
                 config={"firewall.allow": "udp:53"})
    graph.add_nf("nat1", "nat")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0", vlan_id=200)
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:fw:lan", priority=10)
    graph.add_flow_rule("r2", "vnf:fw:wan", "vnf:nat1:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan",
                        ip_dst="0.0.0.0/0")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan")
    graph.add_flow_rule("r5", "vnf:nat1:lan", "vnf:fw:wan")
    graph.add_flow_rule("r6", "vnf:fw:lan", "endpoint:lan")
    return graph


class TestPortRef:
    def test_parse_vnf(self):
        ref = PortRef.parse("vnf:fw:lan")
        assert (ref.kind, ref.element, ref.port) == ("vnf", "fw", "lan")

    def test_parse_endpoint(self):
        ref = PortRef.parse("endpoint:wan")
        assert (ref.kind, ref.element) == ("endpoint", "wan")

    def test_roundtrip_str(self):
        for text in ("vnf:a:b", "endpoint:x"):
            assert str(PortRef.parse(text)) == text

    def test_malformed_rejected(self):
        for bad in ("vnf:a", "endpoint:a:b", "switch:a", "vnf::p", ""):
            with pytest.raises(ValueError):
                PortRef.parse(bad)

    def test_vnf_needs_port(self):
        with pytest.raises(ValueError):
            PortRef(kind="vnf", element="fw")


class TestModel:
    def test_connect_builds_symmetric_rules(self):
        graph = Nffg(graph_id="g")
        graph.add_nf("a", "nat")
        graph.add_endpoint("e", "eth0")
        fwd, rev = graph.connect("endpoint:e", "vnf:a:lan")
        assert fwd.match.port_in.kind == "endpoint"
        assert rev.match.port_in.kind == "vnf"

    def test_lookup_helpers(self):
        graph = sample_graph()
        assert graph.nf("fw").template == "firewall"
        assert graph.endpoint("wan").vlan_id == 200
        with pytest.raises(KeyError):
            graph.nf("missing")
        with pytest.raises(KeyError):
            graph.endpoint("missing")

    def test_chain_of_lists_nfs_in_rule_order(self):
        assert sample_graph().chain_of() == ["fw", "nat1"]

    def test_endpoint_requires_interface(self):
        with pytest.raises(ValueError):
            Endpoint(ep_id="x", interface="")

    def test_vlan_endpoint_requires_vid(self):
        with pytest.raises(ValueError):
            Endpoint(ep_id="x", ep_type="vlan", interface="eth0")

    def test_flow_rule_priority_range(self):
        graph = Nffg(graph_id="g")
        graph.add_endpoint("e", "eth0")
        graph.add_nf("a", "nat")
        with pytest.raises(ValueError):
            graph.add_flow_rule("r", "endpoint:e", "vnf:a:lan",
                                priority=70000)

    def test_config_dict_is_stable(self):
        spec = NfInstanceSpec.with_config("a", "nat",
                                          {"k2": "v2", "k1": "v1"})
        assert spec.config == (("k1", "v1"), ("k2", "v2"))
        assert spec.config_dict() == {"k1": "v1", "k2": "v2"}


class TestJsonCodec:
    def test_roundtrip_preserves_graph(self):
        graph = sample_graph()
        assert nffg_from_dict(nffg_to_dict(graph)) == graph

    def test_json_string_roundtrip(self):
        graph = sample_graph()
        assert nffg_from_json(nffg_to_json(graph)) == graph

    def test_document_shape(self):
        document = nffg_to_dict(sample_graph())
        body = document["forwarding-graph"]
        assert body["id"] == "g1"
        assert {v["id"] for v in body["VNFs"]} == {"fw", "nat1"}
        assert body["big-switch"]["flow-rules"][0]["match"]["port_in"] \
            == "endpoint:lan"

    def test_vlan_endpoint_field(self):
        document = nffg_to_dict(sample_graph())
        wan = [e for e in document["forwarding-graph"]["end-points"]
               if e["id"] == "wan"][0]
        assert wan["vlan-id"] == 200

    def test_missing_fields_reported(self):
        with pytest.raises(ValueError, match="missing 'id'"):
            nffg_from_dict({"forwarding-graph": {
                "id": "x", "VNFs": [{"template": "nat"}]}})

    def test_not_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            nffg_from_json("{nope")

    def test_top_level_must_be_object(self):
        with pytest.raises(ValueError):
            nffg_from_json("[1,2,3]")

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=8),
           st.integers(min_value=0, max_value=4095))
    def test_roundtrip_property(self, name, vlan):
        graph = Nffg(graph_id=name)
        graph.add_nf("n1", "nat")
        graph.add_endpoint("e1", "eth0", vlan_id=vlan)
        graph.add_flow_rule("r1", "endpoint:e1", "vnf:n1:lan")
        graph.add_flow_rule("r2", "vnf:n1:lan", "endpoint:e1")
        assert nffg_from_json(nffg_to_json(graph)) == graph


class TestValidate:
    def test_valid_graph_passes(self):
        validate_nffg(sample_graph())

    def test_unknown_template_flagged(self):
        with pytest.raises(NffgValidationError, match="unknown template"):
            validate_nffg(sample_graph(), known_templates={"nat"})

    def test_dangling_rule_reference(self):
        graph = sample_graph()
        graph.add_flow_rule("bad", "vnf:ghost:lan", "endpoint:lan")
        with pytest.raises(NffgValidationError, match="unknown NF"):
            validate_nffg(graph)

    def test_unreferenced_nf_flagged(self):
        graph = Nffg(graph_id="g")
        graph.add_nf("orphan", "nat")
        graph.add_endpoint("e", "eth0")
        with pytest.raises(NffgValidationError, match="not referenced"):
            validate_nffg(graph)

    def test_duplicate_ids_flagged(self):
        graph = sample_graph()
        graph.nfs.append(graph.nfs[0])
        with pytest.raises(NffgValidationError, match="duplicate NF ids"):
            validate_nffg(graph)

    def test_self_loop_flagged(self):
        graph = Nffg(graph_id="g")
        graph.add_nf("a", "nat")
        graph.add_endpoint("e", "eth0")
        graph.add_flow_rule("keep", "endpoint:e", "vnf:a:lan")
        graph.add_flow_rule("loop", "vnf:a:lan", "vnf:a:lan")
        with pytest.raises(NffgValidationError, match="loops back"):
            validate_nffg(graph)

    def test_all_problems_collected(self):
        graph = Nffg(graph_id="")
        graph.add_nf("a", "nat")
        try:
            validate_nffg(graph, known_templates=set())
        except NffgValidationError as exc:
            assert len(exc.problems) >= 3
        else:
            pytest.fail("expected validation failure")

    def test_bad_technology_flagged(self):
        graph = Nffg(graph_id="g")
        graph.add_nf("a", "nat", technology="baremetal")
        graph.add_endpoint("e", "eth0")
        graph.add_flow_rule("r", "endpoint:e", "vnf:a:lan")
        with pytest.raises(NffgValidationError, match="technology"):
            validate_nffg(graph)


class TestDiff:
    def test_empty_diff(self):
        diff = diff_nffg(sample_graph(), sample_graph())
        assert diff.empty

    def test_added_and_removed_rules(self):
        old = sample_graph()
        new = sample_graph()
        new.flow_rules = [r for r in new.flow_rules if r.rule_id != "r6"]
        new.add_flow_rule("r7", "endpoint:lan", "vnf:nat1:lan")
        diff = diff_nffg(old, new)
        assert [r.rule_id for r in diff.removed_rules] == ["r6"]
        assert [r.rule_id for r in diff.added_rules] == ["r7"]

    def test_changed_rule_is_remove_plus_add(self):
        old = sample_graph()
        new = sample_graph()
        new.flow_rules = [r for r in new.flow_rules if r.rule_id != "r1"]
        new.add_flow_rule("r1", "endpoint:lan", "vnf:fw:lan", priority=99)
        diff = diff_nffg(old, new)
        assert len(diff.added_rules) == 1
        assert len(diff.removed_rules) == 1

    def test_reconfigured_nf_detected(self):
        old = sample_graph()
        new = sample_graph()
        new.nfs = [NfInstanceSpec.with_config(
            "fw", "firewall", {"firewall.allow": "tcp:443"}, "native")
            if spec.nf_id == "fw" else spec for spec in new.nfs]
        diff = diff_nffg(old, new)
        assert [s.nf_id for s in diff.reconfigured_nfs] == ["fw"]
        assert not diff.added_nfs and not diff.removed_nfs

    def test_technology_change_is_replace(self):
        old = sample_graph()
        new = sample_graph()
        new.nfs = [NfInstanceSpec.with_config(
            "fw", "firewall", {"firewall.allow": "udp:53"}, "docker")
            if spec.nf_id == "fw" else spec for spec in new.nfs]
        diff = diff_nffg(old, new)
        assert [s.nf_id for s in diff.added_nfs] == ["fw"]
        assert [s.nf_id for s in diff.removed_nfs] == ["fw"]

    def test_cross_graph_diff_rejected(self):
        with pytest.raises(ValueError):
            diff_nffg(Nffg(graph_id="a"), Nffg(graph_id="b"))

    def test_summary_format(self):
        old = sample_graph()
        new = sample_graph()
        new.add_nf("extra", "bridge")
        new.add_flow_rule("r9", "endpoint:lan", "vnf:extra:p0")
        diff = diff_nffg(old, new)
        assert "+1/-0 NFs" in diff.summary()
