"""Tests for crypto helpers, SAs (anti-replay) and ESP tunnel mode."""

import pytest
from hypothesis import given, strategies as st

from repro.ipsec import (
    EspError,
    KeystreamCipher,
    ReplayError,
    SecurityAssociation,
    SpiAllocator,
    derive_keys,
    esp_decapsulate,
    esp_encapsulate,
    hmac_sha256,
)
from repro.ipsec.esp import esp_overhead
from repro.net.ipv4 import IPPROTO_ESP, IPPROTO_UDP, IPv4Packet


def make_sa(spi=0x1001, src="203.0.113.1", dst="203.0.113.2"):
    enc, auth = derive_keys(b"pre-shared-secret", b"nonce-i", b"nonce-r", spi)
    return SecurityAssociation(spi=spi, src=src, dst=dst,
                               enc_key=enc, auth_key=auth)


def inner_packet(payload=b"secret data", src="192.168.1.10",
                 dst="10.8.0.1"):
    return IPv4Packet(src=src, dst=dst, proto=IPPROTO_UDP, payload=payload)


class TestCrypto:
    def test_keystream_roundtrip(self):
        cipher = KeystreamCipher(b"0123456789abcdef")
        ciphertext = cipher.encrypt(b"iv000000", b"attack at dawn")
        assert ciphertext != b"attack at dawn"
        assert cipher.decrypt(b"iv000000", ciphertext) == b"attack at dawn"

    def test_different_iv_different_keystream(self):
        cipher = KeystreamCipher(b"0123456789abcdef")
        a = cipher.encrypt(b"iv000001", b"\x00" * 32)
        b = cipher.encrypt(b"iv000002", b"\x00" * 32)
        assert a != b

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            KeystreamCipher(b"short")

    def test_hmac_known_vector(self):
        # RFC 4231 test case 2
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex().startswith("5bdcc146bf60754e6a042426089575c7")

    def test_derive_keys_deterministic_and_distinct(self):
        enc1, auth1 = derive_keys(b"s", b"ni", b"nr", 0x1000)
        enc2, auth2 = derive_keys(b"s", b"ni", b"nr", 0x1000)
        assert enc1 == enc2 and auth1 == auth2
        assert enc1 != auth1
        enc3, _ = derive_keys(b"s", b"ni", b"nr", 0x1001)
        assert enc3 != enc1

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            derive_keys(b"", b"a", b"b", 1)


class TestSecurityAssociation:
    def test_sequence_numbers_monotonic(self):
        sa = make_sa()
        assert sa.next_seq() == 1
        assert sa.next_seq() == 2

    def test_replay_window_accepts_in_order(self):
        sa = make_sa()
        for seq in range(1, 100):
            sa.check_replay(seq)
            sa.mark_seen(seq)

    def test_replay_detected(self):
        sa = make_sa()
        sa.mark_seen(5)
        with pytest.raises(ReplayError):
            sa.check_replay(5)

    def test_out_of_order_within_window_ok(self):
        sa = make_sa()
        sa.mark_seen(10)
        sa.check_replay(7)  # unseen, inside window
        sa.mark_seen(7)
        with pytest.raises(ReplayError):
            sa.check_replay(7)

    def test_stale_sequence_rejected(self):
        sa = make_sa()
        sa.mark_seen(100)
        with pytest.raises(ReplayError):
            sa.check_replay(100 - 64)

    def test_sequence_zero_invalid(self):
        sa = make_sa()
        with pytest.raises(ReplayError):
            sa.check_replay(0)

    def test_hard_lifetime_enforced(self):
        sa = make_sa()
        sa.hard_packet_limit = 2
        sa.next_seq()
        sa.next_seq()
        with pytest.raises(OverflowError):
            sa.next_seq()

    def test_bad_spi_rejected(self):
        with pytest.raises(ValueError):
            SecurityAssociation(spi=0, src="1.1.1.1", dst="2.2.2.2",
                                enc_key=b"k" * 16, auth_key=b"k" * 16)


class TestSpiAllocator:
    def test_unique_allocation(self):
        allocator = SpiAllocator()
        spis = {allocator.allocate() for _ in range(100)}
        assert len(spis) == 100

    def test_reserve_collision_rejected(self):
        allocator = SpiAllocator()
        spi = allocator.allocate()
        with pytest.raises(ValueError):
            allocator.reserve(spi)

    def test_reserved_range_rejected(self):
        allocator = SpiAllocator()
        with pytest.raises(ValueError):
            allocator.reserve(10)


class TestEsp:
    def test_encap_decap_roundtrip(self):
        out_sa = make_sa()
        in_sa = make_sa()  # same keys, fresh replay state
        inner = inner_packet()
        outer = esp_encapsulate(out_sa, inner)
        assert outer.proto == IPPROTO_ESP
        assert outer.src == out_sa.src and outer.dst == out_sa.dst
        recovered = esp_decapsulate(in_sa, outer)
        assert recovered == inner

    def test_payload_is_encrypted(self):
        sa = make_sa()
        outer = esp_encapsulate(sa, inner_packet(b"plaintext-marker"))
        assert b"plaintext-marker" not in outer.payload

    def test_tampering_detected(self):
        out_sa, in_sa = make_sa(), make_sa()
        outer = esp_encapsulate(out_sa, inner_packet())
        tampered = IPv4Packet(src=outer.src, dst=outer.dst, proto=outer.proto,
                              payload=outer.payload[:-1] +
                              bytes([outer.payload[-1] ^ 1]))
        with pytest.raises(EspError, match="ICV"):
            esp_decapsulate(in_sa, tampered)

    def test_replayed_packet_rejected(self):
        out_sa, in_sa = make_sa(), make_sa()
        outer = esp_encapsulate(out_sa, inner_packet())
        esp_decapsulate(in_sa, outer)
        with pytest.raises(ReplayError):
            esp_decapsulate(in_sa, outer)

    def test_wrong_sa_rejected(self):
        out_sa = make_sa(spi=0x1001)
        other = make_sa(spi=0x2002)
        outer = esp_encapsulate(out_sa, inner_packet())
        with pytest.raises(EspError):
            esp_decapsulate(other, outer)

    def test_non_esp_packet_rejected(self):
        with pytest.raises(EspError):
            esp_decapsulate(make_sa(), inner_packet())

    def test_overhead_formula_matches_reality(self):
        out_sa = make_sa()
        for size in (0, 1, 2, 3, 4, 100, 1399, 1400):
            inner = inner_packet(b"q" * size)
            outer = esp_encapsulate(out_sa, inner)
            assert (outer.total_length - inner.total_length
                    == esp_overhead(inner.total_length)), size

    def test_counters_track_traffic(self):
        out_sa, in_sa = make_sa(), make_sa()
        for _ in range(3):
            esp_decapsulate(in_sa, esp_encapsulate(out_sa, inner_packet()))
        assert out_sa.packets_out == 3
        assert in_sa.packets_in == 3

    @given(st.binary(max_size=1400))
    def test_roundtrip_property(self, payload):
        out_sa, in_sa = make_sa(), make_sa()
        inner = inner_packet(payload)
        assert esp_decapsulate(in_sa, esp_encapsulate(out_sa, inner)) == inner
