"""Compute layer: lifecycle FSM, manager dispatch, driver behaviour."""

import pytest

from repro.catalog.repository import VnfRepository
from repro.catalog.templates import NfImplementation, Technology
from repro.compute.base import DriverError
from repro.compute.drivers.docker import DockerDriver
from repro.compute.drivers.dpdk import DpdkDriver
from repro.compute.drivers.native import NativeDriver
from repro.compute.drivers.vm_kvm import KvmDriver
from repro.compute.instances import (
    InstanceSpec,
    InstanceState,
    LifecycleError,
    NfInstance,
)
from repro.compute.manager import ComputeManager
from repro.linuxnet.host import LinuxHost
from repro.net import MacAddress, make_udp_frame
from repro.nnf.plugins import stock_registry


def nat_impl(technology=Technology.DOCKER):
    template = VnfRepository.stock().get("nat")
    return template.implementation_for(technology)


def make_spec(instance_id="i1", technology=Technology.DOCKER, config=None):
    return InstanceSpec(
        instance_id=instance_id, graph_id="g1", nf_id="nat1",
        template_name="nat", functional_type="nat",
        logical_ports=("lan", "wan"),
        implementation=nat_impl(technology),
        config=config or {"lan.address": "192.168.1.1/24",
                          "wan.address": "203.0.113.2/24",
                          "gateway": "203.0.113.1"})


class TestLifecycleFsm:
    def instance(self):
        return NfInstance(spec=make_spec(), technology=Technology.DOCKER,
                          netns="docker-i1")

    def test_happy_path(self):
        instance = self.instance()
        for operation in ("create", "configure", "start", "stop",
                          "start", "stop", "destroy"):
            instance.transition(operation)
        assert instance.state is InstanceState.DESTROYED

    def test_update_only_while_running(self):
        instance = self.instance()
        instance.transition("create")
        with pytest.raises(LifecycleError):
            instance.transition("update")
        instance.transition("configure")
        instance.transition("start")
        instance.transition("update")
        assert instance.state is InstanceState.RUNNING

    def test_start_before_configure_rejected(self):
        instance = self.instance()
        instance.transition("create")
        with pytest.raises(LifecycleError):
            instance.transition("start")

    def test_destroy_twice_rejected(self):
        instance = self.instance()
        instance.transition("create")
        instance.transition("destroy")
        with pytest.raises(LifecycleError):
            instance.transition("destroy")

    def test_unknown_operation_rejected(self):
        with pytest.raises(LifecycleError):
            self.instance().transition("reboot")


class TestDockerDriver:
    def test_create_builds_namespace_and_veths(self):
        host = LinuxHost()
        driver = DockerDriver(host, behaviors=stock_registry())
        instance = driver.create(make_spec())
        assert instance.netns == "docker-i1"
        assert "docker-i1" in host.namespaces
        # Inner devices are guest-style eth0/eth1...
        assert instance.inner_devices == {"lan": "eth0", "wan": "eth1"}
        # ...and the switch-side halves live in the root namespace.
        for device in instance.switch_devices.values():
            assert device.namespace is host.root

    def test_runtime_ram_is_rss_plus_shim(self):
        host = LinuxHost()
        driver = DockerDriver(host, behaviors=stock_registry())
        instance = driver.create(make_spec())
        assert instance.runtime_ram_mb == pytest.approx(
            driver.default_nf_rss_mb + driver.shim_rss_mb)

    def test_destroy_removes_namespace_and_devices(self):
        host = LinuxHost()
        driver = DockerDriver(host, behaviors=stock_registry())
        instance = driver.create(make_spec())
        names = [d.name for d in instance.unique_switch_devices()]
        driver.configure(instance)
        driver.start(instance)
        driver.stop(instance)
        driver.destroy(instance)
        assert "docker-i1" not in host.namespaces
        for name in names:
            assert name not in host.root.devices


class TestKvmDriver:
    def test_vm_ram_is_guest_plus_qemu(self):
        host = LinuxHost()
        driver = KvmDriver(host, behaviors=stock_registry())
        instance = driver.create(make_spec(technology=Technology.VM))
        assert instance.runtime_ram_mb == pytest.approx(
            driver.guest_ram_mb + driver.qemu_rss_mb)

    def test_vm_boot_far_slower_than_container(self):
        assert KvmDriver.boot_seconds > 10 * DockerDriver.boot_seconds
        assert DockerDriver.boot_seconds > NativeDriver.boot_seconds


class TestDpdkDriver:
    def spec(self):
        template = VnfRepository.stock().get("l2-forwarder-dpdk")
        return InstanceSpec(
            instance_id="fwd1", graph_id="g1", nf_id="fwd",
            template_name=template.name,
            functional_type=template.functional_type,
            logical_ports=template.ports,
            implementation=template.implementation_for(Technology.DPDK),
            config={})

    def test_forwards_between_ports_bypassing_kernel(self):
        host = LinuxHost()
        driver = DpdkDriver(host, behaviors=stock_registry())
        instance = driver.create(self.spec())
        instance.transition  # state machine exercised below
        driver.configure(instance)
        driver.start(instance)
        received = []
        out_dev = instance.switch_devices["out"]
        out_dev.set_up()
        out_dev.attach_handler(lambda dev, frame: received.append(frame))
        in_dev = instance.switch_devices["in"]
        in_dev.set_up()
        frame = make_udp_frame(MacAddress("02:00:00:00:00:01"),
                               MacAddress("02:00:00:00:00:02"),
                               "1.1.1.1", "2.2.2.2", 1, 2, b"dpdk")
        in_dev.transmit(frame)
        assert len(received) == 1
        # The namespace stack never saw the packet (kernel bypass).
        namespace = host.namespace(instance.netns)
        assert namespace.rx_delivered == 0
        driver.stop(instance)
        in_dev.transmit(frame)
        assert len(received) == 1  # stopped: no longer forwarding

    def test_two_ports_required(self):
        host = LinuxHost()
        driver = DpdkDriver(host, behaviors=stock_registry())
        spec = self.spec()
        bad = InstanceSpec(
            instance_id="x", graph_id="g", nf_id="x",
            template_name=spec.template_name,
            functional_type=spec.functional_type,
            logical_ports=("only",),
            implementation=spec.implementation, config={})
        with pytest.raises(DriverError, match="two-port"):
            driver.create(bad)


class TestComputeManager:
    def manager(self):
        host = LinuxHost()
        manager = ComputeManager()
        registry = stock_registry()
        manager.register_driver(DockerDriver(host, behaviors=registry))
        manager.register_driver(NativeDriver(host, registry))
        return manager

    def test_dispatch_by_technology(self):
        manager = self.manager()
        docker_instance = manager.create(make_spec("d1"))
        native_instance = manager.create(
            make_spec("n1", technology=Technology.NATIVE))
        assert docker_instance.technology is Technology.DOCKER
        assert native_instance.technology is Technology.NATIVE

    def test_duplicate_instance_id_rejected(self):
        manager = self.manager()
        manager.create(make_spec("dup"))
        with pytest.raises(DriverError):
            manager.create(make_spec("dup"))

    def test_missing_driver_reported(self):
        manager = self.manager()
        with pytest.raises(DriverError, match="no driver"):
            manager.create(make_spec("v1", technology=Technology.VM))

    def test_duplicate_driver_rejected(self):
        manager = self.manager()
        host = LinuxHost()
        with pytest.raises(ValueError):
            manager.register_driver(DockerDriver(host))

    def test_instances_filtered_by_graph(self):
        manager = self.manager()
        manager.create(make_spec("a"))
        assert len(manager.instances("g1")) == 1
        assert manager.instances("other") == []

    def test_full_lifecycle_through_manager(self):
        manager = self.manager()
        manager.create(make_spec("x"))
        manager.configure("x")
        manager.start("x")
        assert manager.get("x").is_running
        manager.update("x", {"lan.address": "192.168.9.1/24"})
        manager.stop("x")
        manager.destroy("x")
        with pytest.raises(DriverError):
            manager.get("x")

    def test_total_runtime_ram(self):
        manager = self.manager()
        manager.create(make_spec("a"))
        manager.create(make_spec("b", technology=Technology.NATIVE))
        assert manager.total_runtime_ram_mb() > 0
