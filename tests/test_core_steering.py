"""Steering-manager detail tests (rule translation, LSI lifecycle)."""

import pytest

from repro.core.steering import SteeringError, TrafficSteeringManager
from repro.compute.instances import InstanceSpec, NfInstance
from repro.catalog.repository import VnfRepository
from repro.catalog.templates import Technology
from repro.linuxnet.devices import NetDevice, VethPair
from repro.nffg.model import Nffg
from repro.switch.actions import Output, PopVlan, PushVlan


def manager_with_interfaces(*names):
    manager = TrafficSteeringManager()
    wires = {}
    for name in names:
        pair = VethPair(name, f"{name}-wire")
        pair.a.set_up()
        pair.b.set_up()
        manager.register_physical(pair.a)
        wires[name] = pair.b
    return manager, wires


def fake_instance(nf_id, graph_id="g1", ports=("lan", "wan"),
                  shared=False, vlans=None):
    template = VnfRepository.stock().get("nat")
    impl = template.implementation_for(Technology.DOCKER)
    spec = InstanceSpec(instance_id=f"{graph_id}-{nf_id}",
                        graph_id=graph_id, nf_id=nf_id,
                        template_name="nat", functional_type="nat",
                        logical_ports=tuple(ports), implementation=impl)
    instance = NfInstance(spec=spec, technology=Technology.DOCKER,
                          netns=f"ns-{nf_id}", shared=shared)
    for index, port in enumerate(ports):
        device = NetDevice(f"{nf_id}-{port}")
        device.set_up()
        instance.switch_devices[port] = device
        instance.inner_devices[port] = f"eth{index}"
        instance.port_vlans[port] = (vlans or {}).get(port)
    if shared:
        # All logical ports share one trunk device.
        trunk = NetDevice(f"sh-{nf_id}")
        trunk.set_up()
        for port in ports:
            instance.switch_devices[port] = trunk
    return instance


def simple_graph(graph_id="g1"):
    graph = Nffg(graph_id=graph_id)
    graph.add_nf("nat1", "nat")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:wan", "endpoint:wan")
    return graph


def test_duplicate_physical_interface_rejected():
    manager, _wires = manager_with_interfaces("lan0")
    pair = VethPair("lan0", "x")
    with pytest.raises(SteeringError):
        manager.register_physical(pair.a)


def test_graph_network_lifecycle():
    manager, _wires = manager_with_interfaces("lan0", "wan0")
    network = manager.create_graph_network("g1")
    assert network.controller.connected
    assert "g1" in manager.graphs
    with pytest.raises(SteeringError):
        manager.create_graph_network("g1")
    manager.remove_graph_network("g1")
    assert "g1" not in manager.graphs
    # Base-side virtual link port is gone too.
    assert all(port.peer_link is None
               for port in manager.base.datapath.ports.values())


def test_dedicated_rules_split_across_lsis():
    manager, _wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    installed = manager.install_graph_rules(graph, {"nat1": instance})
    assert installed == 2
    counts = manager.flow_counts()
    # Each endpoint<->NF rule needs one entry on each side of the link.
    assert counts["LSI-0"] == 2
    assert counts["LSI-g1"] == 2


def test_cross_lsi_rules_use_internal_tags():
    manager, _wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})
    base_entries = list(manager.base.datapath.table)
    ingress = [e for e in base_entries
               if any(isinstance(a, PushVlan) for a in e.actions)]
    assert ingress, "LSI-0 must tag traffic towards the graph LSI"
    tags = [a.vid for e in ingress for a in e.actions
            if isinstance(a, PushVlan)]
    assert all(tag >= 3000 for tag in tags)
    # Far side pops the same tag.
    graph_entries = list(manager.graphs["g1"].lsi.datapath.table)
    pops = [e for e in graph_entries
            if any(isinstance(a, PopVlan) for a in e.actions)]
    assert pops


def test_shared_trunk_lives_on_lsi0_with_vlans():
    manager, _wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1", shared=True,
                             vlans={"lan": 101, "wan": 102})
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})
    # Trunk port exists once on LSI-0, no NF ports on the graph LSI.
    port_names = [p.name for p in manager.base.datapath.ports.values()]
    assert "sh-nat1" in port_names
    assert manager.graphs["g1"].nf_ports == {}
    # Ingress rule pushes the adaptation VLAN before the trunk.
    pushes = [a.vid for e in manager.base.datapath.table
              for a in e.actions if isinstance(a, PushVlan)]
    assert 101 in pushes


def test_unknown_endpoint_interface_rejected():
    manager, _wires = manager_with_interfaces("lan0")
    graph = simple_graph()  # references wan0, not registered
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    with pytest.raises(SteeringError, match="not attached"):
        manager.install_graph_rules(graph, {"nat1": instance})


def test_unknown_nf_port_rejected():
    manager, _wires = manager_with_interfaces("lan0", "wan0")
    graph = Nffg(graph_id="g1")
    graph.add_nf("nat1", "nat")
    graph.add_endpoint("lan", "lan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:oops")
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    with pytest.raises(SteeringError, match="no port"):
        manager.install_graph_rules(graph, {"nat1": instance})


def test_vlan_endpoint_matched_and_popped():
    manager, wires = manager_with_interfaces("trunk0")
    graph = Nffg(graph_id="g1")
    graph.add_nf("nat1", "nat")
    graph.add_endpoint("svc", "trunk0", vlan_id=300)
    graph.add_flow_rule("r1", "endpoint:svc", "vnf:nat1:lan")
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})
    (entry,) = [e for e in manager.base.datapath.table
                if e.match.vlan_vid == 300]
    assert isinstance(entry.actions[0], PopVlan)


def test_inject_batch_traverses_lsi_chain():
    manager, _wires = manager_with_interfaces("lan0", "wan0")
    graph = simple_graph()
    manager.create_graph_network("g1")
    instance = fake_instance("nat1")
    manager.attach_instances("g1", {"nat1": instance})
    manager.install_graph_rules(graph, {"nat1": instance})
    nf_lan = instance.switch_devices["lan"]
    from repro.net import MacAddress, make_udp_frame
    frames = [make_udp_frame(MacAddress("02:00:00:00:00:01"),
                             MacAddress("02:00:00:00:00:02"),
                             "10.0.0.1", "10.0.0.2", 1000 + i, 2000, b"x")
              for i in range(3)]
    manager.inject_batch("lan0", frames)
    assert nf_lan.tx_packets == 3  # delivered out of the NF-facing port
    # The classification hop crossed the virtual link as one batch.
    assert manager.graphs["g1"].link.carried == 3
    with pytest.raises(SteeringError, match="not attached"):
        manager.inject_batch("nope0", frames)


def test_flow_counts_inventory():
    manager, _wires = manager_with_interfaces("lan0", "wan0")
    manager.create_graph_network("a")
    manager.create_graph_network("b")
    counts = manager.flow_counts()
    assert set(counts) == {"LSI-0", "LSI-a", "LSI-b"}
