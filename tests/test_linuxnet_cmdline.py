"""ScriptRunner: the command strings NNF plugins emit."""

import pytest

from repro.linuxnet import LinuxHost
from repro.linuxnet.cmdline import CommandError, ScriptRunner


@pytest.fixture
def runner():
    return ScriptRunner(LinuxHost())


def test_netns_lifecycle(runner):
    runner.run("ip netns add nnf-1")
    assert "nnf-1" in runner.host.namespaces
    runner.run("ip netns del nnf-1")
    assert "nnf-1" not in runner.host.namespaces


def test_veth_create_move_and_address(runner):
    runner.run_script([
        "ip netns add nnf-1",
        "ip link add veth0 type veth peer name veth1",
        "ip link set veth1 netns nnf-1",
        "ip addr add 10.0.0.1/24 dev veth0",
        "ip link set veth0 up",
        "ip netns exec nnf-1 ip addr add 10.0.0.2/24 dev veth1",
        "ip netns exec nnf-1 ip link set veth1 up",
    ])
    root = runner.host.root
    nnf = runner.host.namespace("nnf-1")
    assert root.device("veth0").owns_address("10.0.0.1")
    assert nnf.device("veth1").owns_address("10.0.0.2")
    assert root.device("veth0").peer is nnf.device("veth1")


def test_route_commands(runner):
    runner.run_script([
        "ip link add e0 type veth peer name e1",
        "ip addr add 192.168.1.1/24 dev e0",
        "ip route add default via 192.168.1.254 dev e0",
        "ip route add 172.16.0.0/12 dev e0",
    ])
    route = runner.host.root.routes.lookup("8.8.8.8")
    assert route.gateway == "192.168.1.254"
    assert runner.host.root.routes.lookup("172.16.5.5").gateway is None


def test_route_via_without_dev_resolves_device(runner):
    runner.run_script([
        "ip link add e0 type veth peer name e1",
        "ip addr add 192.168.1.1/24 dev e0",
        "ip route add 10.0.0.0/8 via 192.168.1.254",
    ])
    assert runner.host.root.routes.lookup("10.1.1.1").device == "e0"


def test_iptables_nat_and_mangle(runner):
    runner.run_script([
        "ip link add wan0 type veth peer name wan1",
        "iptables -t nat -A POSTROUTING -o wan0 -j MASQUERADE",
        "iptables -t mangle -A PREROUTING -i wan0 -j MARK --set-mark 0x2/0xff",
        "iptables -A FORWARD -m mark --mark 0x2/0xff -j ACCEPT",
        "iptables -P FORWARD DROP",
    ])
    nat_rules = runner.host.root.iptables.list_rules("nat")
    assert any("MASQUERADE" in line for line in nat_rules)
    forward = runner.host.root.iptables.table("filter").chain("FORWARD")
    assert forward.policy == "DROP"
    assert len(forward.rules) == 1


def test_iptables_dnat_with_ports(runner):
    runner.run(
        "iptables -t nat -A PREROUTING -p udp --dport 8080 "
        "-j DNAT --to-destination 192.168.1.10:80")
    rule = runner.host.root.iptables.table("nat").chain("PREROUTING").rules[0]
    assert rule.target == "DNAT"
    assert rule.target_args == {"to_ip": "192.168.1.10", "to_port": 80}
    assert rule.match.dport == (8080, 8080)


def test_iptables_user_chain_and_delete(runner):
    runner.run_script([
        "iptables -N TENANT1",
        "iptables -A TENANT1 -s 10.0.0.0/24 -j ACCEPT",
        "iptables -A FORWARD -j TENANT1",
        "iptables -D FORWARD -j TENANT1",
        "iptables -F TENANT1",
        "iptables -X TENANT1",
    ])
    table = runner.host.root.iptables.table("filter")
    assert "TENANT1" not in table.chains
    assert table.chain("FORWARD").rules == []


def test_iptables_connmark(runner):
    runner.run_script([
        "iptables -t mangle -A PREROUTING -j CONNMARK --restore-mark",
        "iptables -t mangle -A POSTROUTING -j CONNMARK --save-mark",
    ])
    rules = runner.host.root.iptables.table("mangle").chain(
        "PREROUTING").rules
    assert rules[0].target == "CONNMARK"
    assert rules[0].target_args["op"] == "restore"


def test_xfrm_state_and_policy(runner):
    key = "aa" * 16
    runner.run_script([
        "ip xfrm state add src 203.0.113.1 dst 203.0.113.2 proto esp "
        f"spi 0x1001 enc {key} auth {key}",
        "ip xfrm policy add src 192.168.1.0/24 dst 192.168.2.0/24 dir out "
        "tmpl src 203.0.113.1 dst 203.0.113.2",
    ])
    ns = runner.host.root
    assert ns.xfrm.find_state("203.0.113.2", 0x1001) is not None
    assert len(ns.xfrm.policies()) == 1


def test_brctl_and_master(runner):
    runner.run_script([
        "brctl addbr br0",
        "ip link add p0 type veth peer name p1",
        "ip link set p0 master br0",
    ])
    assert "p0" in runner.host.bridges["br0"].ports
    runner.run("ip link set p0 nomaster")
    assert "p0" not in runner.host.bridges["br0"].ports


def test_sysctl_forwarding(runner):
    runner.run("sysctl -w net.ipv4.ip_forward=1")
    assert runner.host.root.ip_forward


def test_comments_and_blank_lines_skipped(runner):
    runner.run_script("""
    # configure nothing

    echo configuring
    true
    """)
    assert runner.host.root.routes is not None


def test_unknown_command_raises(runner):
    with pytest.raises(CommandError):
        runner.run("systemctl restart networking")
    with pytest.raises(CommandError):
        runner.run("ip link frobnicate e0")


def test_executed_log_kept(runner):
    runner.run("echo one")
    runner.run("true")
    assert runner.executed == ["echo one", "true"]
