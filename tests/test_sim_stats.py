"""Tests for measurement helpers."""

import pytest

from repro.sim import Counter, RateMeter, Simulator, TimeWeightedStat
from repro.sim.stats import WelfordStat


def test_counter_total_and_mark():
    counter = Counter("packets")
    counter.add(5)
    counter.add()
    assert counter.total == 6
    assert counter.mark() == 6
    counter.add(2)
    assert counter.mark() == 2


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().add(-1)


def test_rate_meter_bits_per_second():
    sim = Simulator()
    meter = RateMeter(sim)

    def sender():
        for _ in range(10):
            meter.record(1250)  # 10 kbit
            yield sim.timeout(0.1)

    sim.process(sender())
    sim.run()
    # 12500 bytes over 1.0s => 100 kbit/s
    assert meter.rate_bps == pytest.approx(100_000.0)
    assert meter.rate_pps == pytest.approx(10.0)


def test_rate_meter_reset_window():
    sim = Simulator()
    meter = RateMeter(sim)
    meter.record(100)
    sim.timeout(1.0)
    sim.run()
    meter.reset()
    assert meter.bytes_total == 0
    assert meter.rate_bps == 0.0


def test_time_weighted_mean():
    sim = Simulator()
    stat = TimeWeightedStat(sim, initial=0.0)

    def stepper():
        yield sim.timeout(1.0)
        stat.update(10.0)   # 0 for [0,1)
        yield sim.timeout(3.0)
        stat.update(0.0)    # 10 for [1,4)

    sim.process(stepper())
    sim.run(until=5.0)
    # area = 0*1 + 10*3 + 0*1 = 30 over 5s
    assert stat.mean == pytest.approx(6.0)
    assert stat.maximum == 10.0
    assert stat.minimum == 0.0


def test_welford_matches_closed_form():
    stat = WelfordStat()
    samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    for sample in samples:
        stat.add(sample)
    assert stat.n == len(samples)
    assert stat.mean == pytest.approx(5.0)
    assert stat.stdev == pytest.approx(2.138089935299395)
    assert stat.minimum == 2.0
    assert stat.maximum == 9.0


def test_welford_empty_is_safe():
    stat = WelfordStat()
    assert stat.mean == 0.0
    assert stat.variance == 0.0
