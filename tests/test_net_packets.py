"""Codec tests: Ethernet/VLAN, IPv4, UDP/TCP, ICMP, builder."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    ETHERTYPE_IPV4,
    EthernetFrame,
    IPv4Packet,
    IPPROTO_TCP,
    IPPROTO_UDP,
    MacAddress,
    TcpSegment,
    UdpDatagram,
    internet_checksum,
    make_tcp_frame,
    make_udp_frame,
    parse_frame,
)
from repro.net.icmp import ICMP_ECHO_REQUEST, IcmpMessage

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


class TestChecksum:
    def test_rfc1071_example(self):
        # Example words from RFC 1071 section 3
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_is_zero(self):
        data = bytearray(b"\x45\x00\x00\x14" + b"\x00" * 16)
        checksum = internet_checksum(bytes(data))
        data[10:12] = checksum.to_bytes(2, "big")
        assert internet_checksum(bytes(data)) == 0


class TestEthernet:
    def test_roundtrip_untagged(self):
        frame = EthernetFrame(dst=MAC_B, src=MAC_A,
                              ethertype=ETHERTYPE_IPV4, payload=b"hello")
        decoded = EthernetFrame.from_bytes(frame.to_bytes())
        assert decoded == frame

    def test_roundtrip_vlan_tagged(self):
        frame = EthernetFrame(dst=MAC_B, src=MAC_A,
                              ethertype=ETHERTYPE_IPV4, payload=b"data",
                              vlan=42, vlan_pcp=5)
        decoded = EthernetFrame.from_bytes(frame.to_bytes())
        assert decoded.vlan == 42
        assert decoded.vlan_pcp == 5
        assert decoded.payload == b"data"

    def test_vlan_push_pop(self):
        frame = EthernetFrame(dst=MAC_B, src=MAC_A,
                              ethertype=ETHERTYPE_IPV4, payload=b"x")
        tagged = frame.with_vlan(100)
        assert tagged.vlan == 100
        assert len(tagged) == len(frame) + 4
        assert tagged.without_vlan() == frame

    def test_bad_vlan_rejected(self):
        with pytest.raises(ValueError):
            EthernetFrame(dst=MAC_B, src=MAC_A, ethertype=ETHERTYPE_IPV4,
                          payload=b"", vlan=4096)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetFrame.from_bytes(b"\x00" * 10)

    @given(st.binary(max_size=64),
           st.integers(min_value=0, max_value=4095))
    def test_roundtrip_property(self, payload, vid):
        frame = EthernetFrame(dst=MAC_A, src=MAC_B,
                              ethertype=ETHERTYPE_IPV4,
                              payload=payload, vlan=vid)
        assert EthernetFrame.from_bytes(frame.to_bytes()) == frame


class TestIPv4:
    def test_roundtrip(self):
        packet = IPv4Packet(src="10.0.0.1", dst="10.0.0.2",
                            proto=IPPROTO_UDP, payload=b"payload", ttl=33)
        decoded = IPv4Packet.from_bytes(packet.to_bytes())
        assert decoded == packet

    def test_checksum_detects_corruption(self):
        packet = IPv4Packet(src="10.0.0.1", dst="10.0.0.2",
                            proto=IPPROTO_UDP, payload=b"")
        raw = bytearray(packet.to_bytes())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(ValueError, match="checksum"):
            IPv4Packet.from_bytes(bytes(raw))

    def test_ttl_decrement(self):
        packet = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", proto=6,
                            payload=b"", ttl=2)
        assert packet.decrement_ttl().ttl == 1
        with pytest.raises(ValueError):
            packet.decrement_ttl().decrement_ttl()

    def test_bad_address_rejected_on_construction(self):
        with pytest.raises(ValueError):
            IPv4Packet(src="300.0.0.1", dst="10.0.0.2", proto=6, payload=b"")

    @given(st.binary(max_size=128), st.integers(min_value=1, max_value=255))
    def test_roundtrip_property(self, payload, ttl):
        packet = IPv4Packet(src="192.168.0.1", dst="172.16.0.9",
                            proto=IPPROTO_TCP, payload=payload, ttl=ttl)
        assert IPv4Packet.from_bytes(packet.to_bytes()) == packet


class TestTransport:
    def test_udp_roundtrip(self):
        datagram = UdpDatagram(src_port=1234, dst_port=80, payload=b"GET /")
        decoded = UdpDatagram.from_bytes(datagram.to_bytes("1.1.1.1",
                                                           "2.2.2.2"))
        assert decoded == datagram

    def test_udp_bad_port_rejected(self):
        with pytest.raises(ValueError):
            UdpDatagram(src_port=70000, dst_port=80, payload=b"")

    def test_tcp_roundtrip_with_flags(self):
        segment = TcpSegment(src_port=5001, dst_port=443, seq=1000,
                             ack=2000, flags=0x12, payload=b"syn-ack")
        decoded = TcpSegment.from_bytes(segment.to_bytes())
        assert decoded == segment
        assert decoded.syn and decoded.is_ack and not decoded.fin

    def test_tcp_sequence_range(self):
        with pytest.raises(ValueError):
            TcpSegment(src_port=1, dst_port=2, seq=1 << 32, ack=0,
                       flags=0, payload=b"")

    @given(st.binary(max_size=256))
    def test_udp_roundtrip_property(self, payload):
        datagram = UdpDatagram(src_port=53, dst_port=5353, payload=payload)
        assert UdpDatagram.from_bytes(datagram.to_bytes()) == datagram


class TestIcmp:
    def test_echo_roundtrip(self):
        message = IcmpMessage(icmp_type=ICMP_ECHO_REQUEST, code=0,
                              identifier=7, sequence=3, payload=b"ping")
        decoded = IcmpMessage.from_bytes(message.to_bytes())
        assert decoded == message

    def test_reply_mirrors_request(self):
        request = IcmpMessage(icmp_type=ICMP_ECHO_REQUEST, code=0,
                              identifier=9, sequence=1, payload=b"abc")
        reply = request.reply()
        assert reply.is_echo_reply
        assert reply.identifier == 9
        assert reply.payload == b"abc"

    def test_reply_to_reply_rejected(self):
        reply = IcmpMessage(icmp_type=0, code=0, identifier=1, sequence=1)
        with pytest.raises(ValueError):
            reply.reply()


class TestBuilder:
    def test_udp_frame_parses_back(self):
        frame = make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                               4000, 5001, b"iperf", vlan=7)
        parsed = parse_frame(frame.to_bytes())
        assert parsed.eth.vlan == 7
        assert parsed.ipv4.src == "10.0.0.1"
        assert parsed.udp.dst_port == 5001
        assert parsed.five_tuple == ("10.0.0.1", "10.0.0.2", 17, 4000, 5001)

    def test_tcp_frame_parses_back(self):
        frame = make_tcp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                               3300, 80, b"data", seq=5)
        parsed = parse_frame(frame)
        assert parsed.tcp.seq == 5
        assert parsed.tcp.payload == b"data"

    def test_non_ip_frame_parses_shallow(self):
        frame = EthernetFrame(dst=MAC_A, src=MAC_B, ethertype=0x0806,
                              payload=b"arp-ish")
        parsed = parse_frame(frame)
        assert parsed.ipv4 is None
        assert parsed.five_tuple is None

    def test_ip_ints_follow_ipv4_reassignment(self):
        from repro.net.addresses import ip_to_int
        from repro.net.ipv4 import IPv4Packet
        frame = make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                               4000, 5001, b"x")
        parsed = parse_frame(frame)
        assert parsed.ip_ints == (ip_to_int("10.0.0.1"),
                                  ip_to_int("10.0.0.2"))
        # Rewriting the L3 view (NAT-style) must invalidate the cache.
        parsed.ipv4 = IPv4Packet(src="9.9.9.9", dst="10.0.0.2", proto=17,
                                 payload=parsed.ipv4.payload)
        assert parsed.ip_ints == (ip_to_int("9.9.9.9"),
                                  ip_to_int("10.0.0.2"))
