"""Flow table matching, priority and modification semantics."""

import pytest

from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.switch import FlowEntry, FlowMatch, FlowTable, Output
from repro.switch.flowtable import ANY_VLAN, NO_VLAN

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def parsed(vlan=None, src_ip="10.0.0.1", dst_ip="10.0.0.2",
           sport=1000, dport=2000):
    return parse_frame(make_udp_frame(MAC_A, MAC_B, src_ip, dst_ip,
                                      sport, dport, b"x", vlan=vlan))


def test_wildcard_matches_everything():
    assert FlowMatch().hits(1, parsed())
    assert FlowMatch().hits(99, parsed(vlan=7))


def test_field_matching():
    match = FlowMatch(in_port=3, eth_src=MAC_A, eth_type=ETHERTYPE_IPV4,
                      ip_dst="10.0.0.0/24", ip_proto=17, tp_dst=2000)
    assert match.hits(3, parsed())
    assert not match.hits(4, parsed())
    assert not match.hits(3, parsed(dst_ip="10.1.0.2"))
    assert not match.hits(3, parsed(dport=2001))


def test_vlan_three_way_semantics():
    tagged = parsed(vlan=42)
    untagged = parsed()
    assert FlowMatch(vlan_vid=42).hits(1, tagged)
    assert not FlowMatch(vlan_vid=42).hits(1, untagged)
    assert not FlowMatch(vlan_vid=43).hits(1, tagged)
    assert FlowMatch(vlan_vid=ANY_VLAN).hits(1, tagged)
    assert not FlowMatch(vlan_vid=ANY_VLAN).hits(1, untagged)
    assert FlowMatch(vlan_vid=NO_VLAN).hits(1, untagged)
    assert not FlowMatch(vlan_vid=NO_VLAN).hits(1, tagged)


def test_l3_match_requires_ipv4():
    from repro.net import EthernetFrame
    arp = parse_frame(EthernetFrame(dst=MAC_B, src=MAC_A, ethertype=0x0806,
                                    payload=b"arp"))
    assert not FlowMatch(ip_src="10.0.0.0/8").hits(1, arp)
    assert FlowMatch(eth_type=0x0806).hits(1, arp)


def test_priority_order():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(), actions=(Output(1),),
                        priority=1))
    table.add(FlowEntry(match=FlowMatch(ip_dst="10.0.0.2/32"),
                        actions=(Output(2),), priority=200))
    entry = table.lookup(1, parsed())
    assert entry.actions == (Output(2),)


def test_add_replaces_same_match_and_priority():
    table = FlowTable()
    match = FlowMatch(in_port=1)
    table.add(FlowEntry(match=match, actions=(Output(1),), priority=5))
    table.add(FlowEntry(match=match, actions=(Output(2),), priority=5))
    assert len(table) == 1
    assert table.lookup(1, parsed()).actions == (Output(2),)


def test_delete_by_cookie():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(in_port=1), actions=(),
                        cookie=0xAA))
    table.add(FlowEntry(match=FlowMatch(in_port=2), actions=(),
                        cookie=0xAA))
    table.add(FlowEntry(match=FlowMatch(in_port=3), actions=(),
                        cookie=0xBB))
    assert table.delete(cookie=0xAA) == 2
    assert len(table) == 1


def test_miss_returns_none_and_counts():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(in_port=5), actions=()))
    assert table.lookup(1, parsed()) is None
    assert table.lookups == 1
    assert table.matches == 0


def test_counters_accumulate():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(), actions=(Output(1),)))
    for _ in range(3):
        table.lookup(1, parsed())
    (entry,) = list(table)
    assert entry.packets == 3
    assert entry.bytes > 0


def test_bad_vlan_vid_rejected():
    with pytest.raises(ValueError):
        FlowMatch(vlan_vid=5000)


def test_bad_cidr_rejected_at_construction():
    with pytest.raises(ValueError):
        FlowMatch(ip_src="10.0.0.0/33")
    with pytest.raises(ValueError):
        FlowMatch(ip_dst="not-an-address")


def test_lookup_never_parses_cidr_strings(monkeypatch):
    """The fast path must be string-free: CIDRs compile at construction."""
    from repro.switch import flowtable as ft

    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(in_port=1, vlan_vid=7,
                                        ip_dst="10.0.0.0/24"),
                        actions=(Output(1),)))
    table.add(FlowEntry(match=FlowMatch(ip_src="10.0.0.0/8"),
                        actions=(Output(2),), priority=10))

    def explode(cidr):
        raise AssertionError(f"parse_cidr({cidr!r}) on the fast path")

    monkeypatch.setattr(ft, "parse_cidr", explode)
    assert table.lookup(1, parsed(vlan=7)) is not None
    assert table.lookup(2, parsed()) is not None
    assert table.lookup(2, parsed(src_ip="172.16.0.1")) is None


def test_exact_bucket_and_wildcards_merge_by_priority():
    table = FlowTable()
    exact = FlowEntry(match=FlowMatch(in_port=1, vlan_vid=5),
                      actions=(Output(1),), priority=50)
    port_wild = FlowEntry(match=FlowMatch(in_port=1),
                          actions=(Output(2),), priority=100)
    full_wild = FlowEntry(match=FlowMatch(), actions=(Output(3),),
                          priority=200)
    for entry in (exact, port_wild, full_wild):
        table.add(entry)
    # All three could match; the highest priority must win regardless of
    # which index level it lives at.
    assert table.lookup(1, parsed(vlan=5)) is full_wild
    table.delete(match=full_wild.match, priority=200, strict=True)
    assert table.lookup(1, parsed(vlan=5)) is port_wild
    table.delete(match=port_wild.match, priority=100, strict=True)
    assert table.lookup(1, parsed(vlan=5)) is exact


def test_any_vlan_entry_reached_from_port_bucket():
    table = FlowTable()
    any_vlan = FlowEntry(match=FlowMatch(in_port=1, vlan_vid=ANY_VLAN),
                         actions=(Output(1),))
    table.add(any_vlan)
    assert table.lookup(1, parsed(vlan=9)) is any_vlan
    assert table.lookup(1, parsed()) is None


def test_oracle_mode_passes_on_consistent_table():
    table = FlowTable()
    table.oracle = True
    table.add(FlowEntry(match=FlowMatch(in_port=1), actions=(Output(1),)))
    table.add(FlowEntry(match=FlowMatch(), actions=(Output(2),),
                        priority=10))
    assert table.lookup(1, parsed()) is not None
    assert table.lookup(9, parsed()) is not None  # wildcard fallback


def test_count_false_defers_counters_until_credit():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(), actions=(Output(1),)))
    entry = table.lookup(1, parsed(), count=False)
    assert entry.packets == 0 and table.matches == 0
    table.credit(entry, 3, 300)
    assert entry.packets == 3
    assert entry.bytes == 300
    assert table.matches == 3


def test_clear_resets_index():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(in_port=1, vlan_vid=5),
                        actions=(Output(1),)))
    table.add(FlowEntry(match=FlowMatch(), actions=(Output(2),)))
    assert table.clear() == 2
    assert len(table) == 0
    assert table.lookup(1, parsed(vlan=5)) is None
