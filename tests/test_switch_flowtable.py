"""Flow table matching, priority and modification semantics."""

import pytest

from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.switch import FlowEntry, FlowMatch, FlowTable, Output
from repro.switch.flowtable import ANY_VLAN, NO_VLAN

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def parsed(vlan=None, src_ip="10.0.0.1", dst_ip="10.0.0.2",
           sport=1000, dport=2000):
    return parse_frame(make_udp_frame(MAC_A, MAC_B, src_ip, dst_ip,
                                      sport, dport, b"x", vlan=vlan))


def test_wildcard_matches_everything():
    assert FlowMatch().hits(1, parsed())
    assert FlowMatch().hits(99, parsed(vlan=7))


def test_field_matching():
    match = FlowMatch(in_port=3, eth_src=MAC_A, eth_type=ETHERTYPE_IPV4,
                      ip_dst="10.0.0.0/24", ip_proto=17, tp_dst=2000)
    assert match.hits(3, parsed())
    assert not match.hits(4, parsed())
    assert not match.hits(3, parsed(dst_ip="10.1.0.2"))
    assert not match.hits(3, parsed(dport=2001))


def test_vlan_three_way_semantics():
    tagged = parsed(vlan=42)
    untagged = parsed()
    assert FlowMatch(vlan_vid=42).hits(1, tagged)
    assert not FlowMatch(vlan_vid=42).hits(1, untagged)
    assert not FlowMatch(vlan_vid=43).hits(1, tagged)
    assert FlowMatch(vlan_vid=ANY_VLAN).hits(1, tagged)
    assert not FlowMatch(vlan_vid=ANY_VLAN).hits(1, untagged)
    assert FlowMatch(vlan_vid=NO_VLAN).hits(1, untagged)
    assert not FlowMatch(vlan_vid=NO_VLAN).hits(1, tagged)


def test_l3_match_requires_ipv4():
    from repro.net import EthernetFrame
    arp = parse_frame(EthernetFrame(dst=MAC_B, src=MAC_A, ethertype=0x0806,
                                    payload=b"arp"))
    assert not FlowMatch(ip_src="10.0.0.0/8").hits(1, arp)
    assert FlowMatch(eth_type=0x0806).hits(1, arp)


def test_priority_order():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(), actions=(Output(1),),
                        priority=1))
    table.add(FlowEntry(match=FlowMatch(ip_dst="10.0.0.2/32"),
                        actions=(Output(2),), priority=200))
    entry = table.lookup(1, parsed())
    assert entry.actions == (Output(2),)


def test_add_replaces_same_match_and_priority():
    table = FlowTable()
    match = FlowMatch(in_port=1)
    table.add(FlowEntry(match=match, actions=(Output(1),), priority=5))
    table.add(FlowEntry(match=match, actions=(Output(2),), priority=5))
    assert len(table) == 1
    assert table.lookup(1, parsed()).actions == (Output(2),)


def test_delete_by_cookie():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(in_port=1), actions=(),
                        cookie=0xAA))
    table.add(FlowEntry(match=FlowMatch(in_port=2), actions=(),
                        cookie=0xAA))
    table.add(FlowEntry(match=FlowMatch(in_port=3), actions=(),
                        cookie=0xBB))
    assert table.delete(cookie=0xAA) == 2
    assert len(table) == 1


def test_miss_returns_none_and_counts():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(in_port=5), actions=()))
    assert table.lookup(1, parsed()) is None
    assert table.lookups == 1
    assert table.matches == 0


def test_counters_accumulate():
    table = FlowTable()
    table.add(FlowEntry(match=FlowMatch(), actions=(Output(1),)))
    for _ in range(3):
        table.lookup(1, parsed())
    (entry,) = list(table)
    assert entry.packets == 3
    assert entry.bytes > 0


def test_bad_vlan_vid_rejected():
    with pytest.raises(ValueError):
        FlowMatch(vlan_vid=5000)
