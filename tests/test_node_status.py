"""Node description and graph status contracts (the REST payloads)."""

import pytest

from repro import ComputeNode, Nffg
from repro.net import MacAddress, make_udp_frame
from repro.perf.capture import PcapCapture


@pytest.fixture
def node():
    node = ComputeNode("status-test")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def nat_graph():
    graph = Nffg(graph_id="g1", name="status graph")
    graph.add_nf("nat1", "nat", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")
    return graph


def test_describe_lists_capabilities_and_nnfs(node):
    description = node.describe()
    assert description["class"] == "cpe"
    assert set(description["technologies"]) >= {"native", "docker"}
    nnf_names = {row["name"] for row in description["nnfs"]}
    assert "iptables-nat" in nnf_names
    assert description["flow-counts"] == {"LSI-0": 0}


def test_describe_reflects_deployments(node):
    node.deploy(nat_graph())
    description = node.describe()
    assert description["deployed-graphs"] == ["g1"]
    assert description["utilisation"]["ram"] > 0
    assert sum(description["flow-counts"].values()) > 0


def test_status_payload_shape(node):
    node.deploy(nat_graph())
    status = node.orchestrator.status("g1")
    assert status["graph-id"] == "g1"
    assert status["name"] == "status graph"
    nf = status["nfs"]["nat1"]
    assert nf["technology"] == "native"
    assert nf["state"] == "running"
    assert nf["shared"] is True
    assert status["flow-rules"] == 4
    assert status["deploy-seconds"] > 0


def test_deployed_graph_record_helpers(node):
    record = node.deploy(nat_graph())
    assert record.graph_id == "g1"
    assert record.technologies() == {"nat1": "native"}
    assert record.modeled_deploy_seconds == pytest.approx(
        record.instances["nat1"].boot_seconds + 0.004, abs=1e-6)


def test_wire_capture(node):
    node.deploy(nat_graph())
    capture = PcapCapture()
    capture.attach_wire(node.wire("wan0"))
    node.wire("lan0").transmit(make_udp_frame(
        MacAddress("02:aa:00:00:00:01"), MacAddress("02:aa:00:00:00:02"),
        "192.168.1.5", "8.8.8.8", 1, 53, b"captured"))
    assert len(capture) == 1
    capture.detach_all()
    node.wire("lan0").transmit(make_udp_frame(
        MacAddress("02:aa:00:00:00:01"), MacAddress("02:aa:00:00:00:02"),
        "192.168.1.5", "8.8.8.8", 1, 53, b"after"))
    assert len(capture) == 1
