"""Datapath pipeline, VLAN actions, virtual links between LSIs."""

import pytest

from repro.linuxnet import VethPair
from repro.net import MacAddress, make_udp_frame, parse_frame
from repro.switch import (
    Datapath,
    FlowEntry,
    FlowMatch,
    LogicalSwitchInstance,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    VirtualLink,
)
from repro.switch.actions import FLOOD_PORT, ActionError

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


def frame(vlan=None, payload=b"x"):
    return make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", 1000, 2000,
                          payload, vlan=vlan)


def collector(datapath, port_name="sink"):
    """Add a device-backed port whose peer records egress frames."""
    pair = VethPair(f"{port_name}-sw", f"{port_name}-nf")
    received = []
    pair.b.set_up()
    pair.b.attach_handler(lambda dev, fr: received.append(fr))
    port = datapath.add_port(port_name, device=pair.a)
    return port, pair, received


def test_forwarding_between_ports():
    dp = Datapath(1)
    in_port, in_pair, _ = collector(dp, "in")
    out_port, _out_pair, out_frames = collector(dp, "out")
    dp.install(FlowEntry(match=FlowMatch(in_port=in_port.port_no),
                         actions=(Output(out_port.port_no),)))
    in_pair.b.transmit(frame())
    assert len(out_frames) == 1
    assert out_port.tx_packets == 1
    assert in_port.rx_packets == 1


def test_table_miss_drops_without_handler():
    dp = Datapath(1)
    _in_port, in_pair, _ = collector(dp, "in")
    in_pair.b.transmit(frame())
    assert dp.table_misses == 1
    assert dp.dropped == 1


def test_packet_in_handler_called_on_miss():
    dp = Datapath(1)
    punted = []
    dp.packet_in_handler = lambda d, port, fr: punted.append((port, fr))
    in_port, in_pair, _ = collector(dp, "in")
    in_pair.b.transmit(frame())
    assert len(punted) == 1
    assert punted[0][0] == in_port.port_no


def test_vlan_push_then_pop_roundtrip():
    dp = Datapath(1)
    in_port, in_pair, _ = collector(dp, "in")
    out_port, _pair, out_frames = collector(dp, "out")
    dp.install(FlowEntry(
        match=FlowMatch(in_port=in_port.port_no),
        actions=(PushVlan(77), Output(out_port.port_no))))
    in_pair.b.transmit(frame())
    assert out_frames[0].vlan == 77
    # Now pop on the way back.
    dp.install(FlowEntry(
        match=FlowMatch(in_port=out_port.port_no, vlan_vid=77),
        actions=(PopVlan(), Output(in_port.port_no))))
    dp.process(out_port.port_no, out_frames[0])
    assert in_pair.b.rx_packets >= 1


def test_pop_untagged_counts_action_error():
    dp = Datapath(1)
    in_port, in_pair, _ = collector(dp, "in")
    dp.install(FlowEntry(match=FlowMatch(), actions=(PopVlan(), Output(99))))
    in_pair.b.transmit(frame())
    assert dp.action_errors == 1


def test_flood_excludes_ingress():
    dp = Datapath(1)
    _p1, pair1, rx1 = collector(dp, "p1")
    _p2, _pair2, rx2 = collector(dp, "p2")
    _p3, _pair3, rx3 = collector(dp, "p3")
    dp.install(FlowEntry(match=FlowMatch(), actions=(Output(FLOOD_PORT),)))
    pair1.b.transmit(frame())
    assert len(rx1) == 0
    assert len(rx2) == 1
    assert len(rx3) == 1


def test_set_field_rewrites_mac():
    dp = Datapath(1)
    in_port, in_pair, _ = collector(dp, "in")
    _out, _pair, out_frames = collector(dp, "out")
    new_mac = "02:00:00:00:00:aa"
    dp.install(FlowEntry(
        match=FlowMatch(in_port=in_port.port_no),
        actions=(SetField("eth_dst", new_mac), Output(2))))
    in_pair.b.transmit(frame())
    assert str(out_frames[0].dst) == new_mac


def test_output_to_missing_port_drops():
    dp = Datapath(1)
    _in_port, in_pair, _ = collector(dp, "in")
    dp.install(FlowEntry(match=FlowMatch(), actions=(Output(42),)))
    in_pair.b.transmit(frame())
    assert dp.dropped == 1


def test_remove_port_detaches_device():
    dp = Datapath(1)
    port, pair, _ = collector(dp, "in")
    dp.remove_port(port.port_no)
    with pytest.raises(KeyError):
        dp.remove_port(port.port_no)
    # Device handler detached: transmitting into it no longer reaches dp.
    pair.b.transmit(frame())
    assert dp.rx_packets == 0


def test_virtual_link_moves_frames_between_lsis():
    base = LogicalSwitchInstance("LSI-0")
    graph = LogicalSwitchInstance("LSI-g1", graph_id="g1")
    link = VirtualLink.connect(base.datapath, graph.datapath, name="vl0")
    # base: everything from the in port goes over the link.
    in_port, in_pair, _ = collector(base.datapath, "phys")
    base_link_port = link.far_port(base.datapath)
    graph_link_port = link.far_port(graph.datapath)
    base.datapath.install(FlowEntry(
        match=FlowMatch(in_port=in_port.port_no),
        actions=(Output(base_link_port.port_no),)))
    # graph LSI: deliver to an NF port.
    _nf_port, _nf_pair, nf_frames = collector(graph.datapath, "nf")
    graph.datapath.install(FlowEntry(
        match=FlowMatch(in_port=graph_link_port.port_no),
        actions=(Output(_nf_port.port_no),)))
    in_pair.b.transmit(frame())
    assert len(nf_frames) == 1
    assert link.carried == 1


def test_virtual_link_requires_deviceless_ports():
    dp_a, dp_b = Datapath(1), Datapath(2)
    _port, pair, _ = collector(dp_a, "dev")
    link = VirtualLink()
    with pytest.raises(ValueError):
        link.attach(dp_a.ports[1], dp_b.add_port("x"))


def test_lsi_roles():
    base = LogicalSwitchInstance("LSI-0")
    graph = LogicalSwitchInstance("LSI-g", graph_id="g7")
    assert base.is_base and not graph.is_base
    assert base.datapath.dpid != graph.datapath.dpid


def test_port_by_name_tracks_add_and_remove():
    dp = Datapath(1)
    first = dp.add_port("alpha")
    dp.add_port("beta")
    assert dp.port_by_name("alpha") is first
    dp.remove_port(first.port_no)
    with pytest.raises(KeyError):
        dp.port_by_name("alpha")
    again = dp.add_port("alpha")
    assert dp.port_by_name("alpha") is again


def test_port_by_name_duplicate_names_first_wins():
    dp = Datapath(1)
    first = dp.add_port("dup")
    second = dp.add_port("dup")
    assert dp.port_by_name("dup") is first
    dp.remove_port(first.port_no)
    assert dp.port_by_name("dup") is second


def test_process_batch_matches_single_frame_path():
    single = Datapath(1)
    batched = Datapath(2)
    setups = []
    for dp in (single, batched):
        in_port, _pair, _ = collector(dp, "in")
        out_port, _opair, frames_out = collector(dp, "out")
        dp.install(FlowEntry(match=FlowMatch(in_port=in_port.port_no),
                             actions=(Output(out_port.port_no),)))
        setups.append((in_port, out_port, frames_out))
    frames = [frame(payload=bytes([i])) for i in range(5)]

    in_a, out_a, rx_a = setups[0]
    for f in frames:
        single.process(in_a.port_no, f)
    in_b, out_b, rx_b = setups[1]
    batched.process_batch((in_b.port_no, f) for f in frames)

    assert [f.payload for f in rx_b] == [f.payload for f in rx_a]
    assert batched.rx_packets == single.rx_packets == 5
    assert out_b.tx_packets == out_a.tx_packets == 5
    assert out_b.tx_bytes == out_a.tx_bytes
    (entry_a,) = list(single.table)
    (entry_b,) = list(batched.table)
    assert entry_b.packets == entry_a.packets == 5
    assert entry_b.bytes == entry_a.bytes
    assert batched.table.matches == single.table.matches == 5


def test_process_batch_miss_and_drop_accounting():
    dp = Datapath(1)
    in_port, _pair, _ = collector(dp, "in")
    dp.process_batch([(in_port.port_no, frame()), (in_port.port_no, frame())])
    assert dp.table_misses == 2
    assert dp.dropped == 2
    punted = []
    dp.packet_in_handler = lambda d, port, fr: punted.append(port)
    dp.process_batch([(in_port.port_no, frame())])
    assert punted == [in_port.port_no]


def test_process_batch_flood_excludes_ingress():
    dp = Datapath(1)
    _p1, pair1, rx1 = collector(dp, "p1")
    _p2, _pair2, rx2 = collector(dp, "p2")
    _p3, _pair3, rx3 = collector(dp, "p3")
    dp.install(FlowEntry(match=FlowMatch(), actions=(Output(FLOOD_PORT),)))
    dp.process_batch([(_p1.port_no, frame()), (_p1.port_no, frame())])
    assert len(rx1) == 0
    assert len(rx2) == 2
    assert len(rx3) == 2


def test_process_batch_unknown_port_raises():
    dp = Datapath(1)
    with pytest.raises(KeyError):
        dp.process_batch([(42, frame())])


def test_process_batch_flushes_prefix_on_midbatch_error():
    dp = Datapath(1)
    in_port, _pair, _ = collector(dp, "in")
    out_port, _opair, rx = collector(dp, "out")
    dp.install(FlowEntry(match=FlowMatch(in_port=in_port.port_no),
                         actions=(Output(out_port.port_no),)))
    with pytest.raises(KeyError):
        dp.process_batch([(in_port.port_no, frame()), (42, frame())])
    # The valid prefix was still delivered and credited.
    assert len(rx) == 1
    assert out_port.tx_packets == 1
    (entry,) = list(dp.table)
    assert entry.packets == 1
    assert dp.table.matches == 1


def test_port_by_name_duplicates_with_explicit_numbers():
    dp = Datapath(1)
    dp.add_port("dup", port_no=5)
    nine = dp.add_port("dup", port_no=9)
    dp.add_port("dup", port_no=2)
    dp.remove_port(5)
    # Earliest-added survivor wins (insertion order, not port number).
    assert dp.port_by_name("dup") is nine


def test_batch_carries_whole_chain_across_virtual_link():
    base = LogicalSwitchInstance("LSI-0")
    graph = LogicalSwitchInstance("LSI-g1", graph_id="g1")
    link = VirtualLink.connect(base.datapath, graph.datapath, name="vl0")
    in_port, _in_pair, _ = collector(base.datapath, "phys")
    base_link_port = link.far_port(base.datapath)
    graph_link_port = link.far_port(graph.datapath)
    base.datapath.install(FlowEntry(
        match=FlowMatch(in_port=in_port.port_no),
        actions=(Output(base_link_port.port_no),)))
    _nf_port, _nf_pair, nf_frames = collector(graph.datapath, "nf")
    graph.datapath.install(FlowEntry(
        match=FlowMatch(in_port=graph_link_port.port_no),
        actions=(Output(_nf_port.port_no),)))
    frames = [frame(payload=bytes([i])) for i in range(4)]
    base.datapath.process_batch((in_port.port_no, f) for f in frames)
    assert [f.payload for f in nf_frames] == [f.payload for f in frames]
    assert link.carried == 4
    # The far LSI saw the frames through its batch pipeline too.
    assert graph.datapath.rx_packets == 4
