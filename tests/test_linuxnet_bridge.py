"""Learning-bridge behaviour, including per-VLAN isolation."""

from repro.linuxnet import LinuxHost, VethPair
from repro.linuxnet.bridge import Bridge
from repro.net import MacAddress, make_udp_frame

import pytest

MACS = [MacAddress(f"02:00:00:00:00:{i:02x}") for i in range(1, 5)]


def bridged_endpoints(count=3, vlan_filtering=False):
    """Bridge with ``count`` veth legs; returns (bridge, ends, inboxes)."""
    bridge = Bridge("br0", vlan_filtering=vlan_filtering)
    ends = []
    inboxes = []
    for index in range(count):
        pair = VethPair(f"b{index}", f"h{index}")
        pair.a.set_up()
        pair.b.set_up()
        inbox = []
        pair.b.attach_handler(lambda dev, fr, box=inbox: box.append(fr))
        bridge.add_port(pair.a)
        ends.append(pair.b)
        inboxes.append(inbox)
    return bridge, ends, inboxes


def frame(src_mac, dst_mac, vlan=None):
    return make_udp_frame(src_mac, dst_mac, "10.0.0.1", "10.0.0.2", 1, 2,
                          b"x", vlan=vlan)


def test_unknown_destination_floods():
    bridge, ends, inboxes = bridged_endpoints()
    ends[0].transmit(frame(MACS[0], MACS[3]))
    assert len(inboxes[0]) == 0
    assert len(inboxes[1]) == 1
    assert len(inboxes[2]) == 1
    assert bridge.flooded == 1


def test_learning_enables_unicast():
    bridge, ends, inboxes = bridged_endpoints()
    # Teach the bridge where MACS[1] lives.
    ends[1].transmit(frame(MACS[1], MACS[3]))
    for box in inboxes:
        box.clear()
    ends[0].transmit(frame(MACS[0], MACS[1]))
    assert len(inboxes[1]) == 1
    assert len(inboxes[2]) == 0
    assert bridge.forwarded == 1


def test_hairpin_dropped():
    bridge, ends, inboxes = bridged_endpoints()
    ends[0].transmit(frame(MACS[0], MACS[3]))   # learn 0
    ends[0].transmit(frame(MACS[1], MACS[0]))   # towards port 0, from port 0
    assert len(inboxes[0]) == 0
    assert bridge.dropped == 1


def test_station_move_relearned():
    bridge, ends, inboxes = bridged_endpoints()
    ends[0].transmit(frame(MACS[0], MACS[3]))
    ends[2].transmit(frame(MACS[0], MACS[3]))  # MACS[0] moved to port 2
    for box in inboxes:
        box.clear()
    ends[1].transmit(frame(MACS[1], MACS[0]))
    assert len(inboxes[2]) == 1
    assert len(inboxes[0]) == 0


def test_broadcast_always_floods():
    bridge, ends, inboxes = bridged_endpoints()
    broadcast = MacAddress("ff:ff:ff:ff:ff:ff")
    ends[0].transmit(frame(MACS[0], broadcast))
    assert len(inboxes[1]) == 1 and len(inboxes[2]) == 1


def test_vlan_filtering_isolates_fdb():
    bridge, ends, inboxes = bridged_endpoints(vlan_filtering=True)
    # Learn MACS[1] on VLAN 10.
    ends[1].transmit(frame(MACS[1], MACS[3], vlan=10))
    for box in inboxes:
        box.clear()
    # Unicast to MACS[1] on VLAN 20 must flood (not known on that VLAN).
    ends[0].transmit(frame(MACS[0], MACS[1], vlan=20))
    assert len(inboxes[1]) == 1 and len(inboxes[2]) == 1
    for box in inboxes:
        box.clear()
    # Unicast on VLAN 10 is forwarded, not flooded.
    ends[0].transmit(frame(MACS[0], MACS[1], vlan=10))
    assert len(inboxes[1]) == 1 and len(inboxes[2]) == 0


def test_port_exclusive_enslavement():
    bridge_a = Bridge("br0")
    bridge_b = Bridge("br1")
    pair = VethPair("x0", "x1")
    bridge_a.add_port(pair.a)
    with pytest.raises(ValueError):
        bridge_b.add_port(pair.a)
    with pytest.raises(ValueError):
        bridge_a.add_port(pair.a)


def test_remove_port_purges_fdb():
    bridge, ends, _ = bridged_endpoints()
    ends[0].transmit(frame(MACS[0], MACS[3]))
    assert any(e.mac == MACS[0] for e in bridge.fdb_entries())
    bridge.remove_port("b0")
    assert not any(e.mac == MACS[0] for e in bridge.fdb_entries())


def test_host_bridge_lifecycle():
    host = LinuxHost()
    host.create_bridge("br-lan")
    with pytest.raises(ValueError):
        host.create_bridge("br-lan")
    host.delete_bridge("br-lan")
    with pytest.raises(KeyError):
        host.delete_bridge("br-lan")
