"""Property-based oracle: indexed lookup ≡ reference linear scan.

Random tables of random :class:`FlowMatch` entries (priority ties,
wildcards, VLAN sentinels, CIDRs of every prefix length) against random
frames (UDP/TCP/ARP, tagged and untagged).  The lookup — in both the
small-table bypass mode and the forced two-level index mode — must
return the *identical* entry object as the pre-index priority-ordered
linear scan, and the compiled per-match predicate must agree with the
original string-based matching logic.
"""

from hypothesis import given, settings, strategies as st

from repro.net import EthernetFrame, MacAddress, make_tcp_frame, \
    make_udp_frame, parse_frame
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.switch import FlowEntry, FlowMatch, FlowTable, Output
from repro.switch.flowtable import ANY_VLAN, NO_VLAN

MACS = [MacAddress(f"02:00:00:00:00:{i:02x}") for i in (1, 2, 3)]
IPS = ["10.0.0.1", "10.0.1.7", "10.1.0.1", "192.168.0.5"]
CIDRS = ["0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24",
         "10.0.0.1/32", "10.0.0.1", "192.168.0.0/24"]
PORTS = [1000, 2000, 3000]
VIDS = [1, 2, 3]

match_strategy = st.builds(
    FlowMatch,
    in_port=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    eth_src=st.one_of(st.none(), st.sampled_from(MACS)),
    eth_dst=st.one_of(st.none(), st.sampled_from(MACS)),
    eth_type=st.one_of(st.none(),
                       st.sampled_from([ETHERTYPE_IPV4, ETHERTYPE_ARP])),
    vlan_vid=st.one_of(st.none(),
                       st.sampled_from([ANY_VLAN, NO_VLAN] + VIDS)),
    ip_src=st.one_of(st.none(), st.sampled_from(CIDRS)),
    ip_dst=st.one_of(st.none(), st.sampled_from(CIDRS)),
    ip_proto=st.one_of(st.none(), st.sampled_from([6, 17])),
    tp_src=st.one_of(st.none(), st.sampled_from(PORTS)),
    tp_dst=st.one_of(st.none(), st.sampled_from(PORTS)),
)


@st.composite
def frame_strategy(draw):
    vlan = draw(st.one_of(st.none(), st.sampled_from(VIDS)))
    kind = draw(st.sampled_from(["udp", "tcp", "arp"]))
    src_mac = draw(st.sampled_from(MACS))
    dst_mac = draw(st.sampled_from(MACS))
    if kind == "arp":
        return EthernetFrame(dst=dst_mac, src=src_mac,
                             ethertype=ETHERTYPE_ARP, payload=b"arp",
                             vlan=vlan)
    maker = make_udp_frame if kind == "udp" else make_tcp_frame
    return maker(src_mac, dst_mac, draw(st.sampled_from(IPS)),
                 draw(st.sampled_from(IPS)), draw(st.sampled_from(PORTS)),
                 draw(st.sampled_from(PORTS)), b"x", vlan=vlan)


@given(match=match_strategy, frame=frame_strategy(),
       in_port=st.integers(min_value=1, max_value=4))
@settings(max_examples=200)
def test_compiled_match_agrees_with_reference(match, frame, in_port):
    parsed = parse_frame(frame)
    assert match.hits(in_port, parsed) \
        == match.hits_reference(in_port, parsed)


@given(
    matches=st.lists(st.tuples(match_strategy,
                               st.integers(min_value=1, max_value=5)),
                     min_size=0, max_size=25),
    frames=st.lists(st.tuples(frame_strategy(),
                              st.integers(min_value=1, max_value=4)),
                    min_size=1, max_size=8),
    threshold=st.sampled_from([0, 16]),
)
@settings(max_examples=100, deadline=None)
def test_indexed_lookup_identical_to_linear_scan(matches, frames, threshold):
    # threshold 0 forces the two-level index even on tiny tables;
    # 16 (the default) exercises the small-table bypass below it.
    table = FlowTable(small_table_threshold=threshold)
    table.oracle = True  # lookup() itself raises on any divergence
    for match, priority in matches:
        # dataclass equality means duplicate (match, priority) pairs
        # exercise the replace path; duplicate priorities exercise ties.
        table.add(FlowEntry(match=match, actions=(Output(1),),
                            priority=priority))
    for frame, in_port in frames:
        parsed = parse_frame(frame)
        indexed = table.lookup(in_port, parsed, count=False)
        linear = table.lookup_linear(in_port, parsed)
        assert indexed is linear


@given(
    matches=st.lists(st.tuples(match_strategy,
                               st.integers(min_value=1, max_value=3)),
                     min_size=2, max_size=20),
    frames=st.lists(st.tuples(frame_strategy(),
                              st.integers(min_value=1, max_value=4)),
                    min_size=1, max_size=5),
    drop=st.integers(min_value=0, max_value=19),
    threshold=st.sampled_from([0, 16]),
)
@settings(max_examples=50, deadline=None)
def test_index_stays_consistent_across_deletes(matches, frames, drop,
                                               threshold):
    table = FlowTable(small_table_threshold=threshold)
    table.oracle = True
    entries = []
    for match, priority in matches:
        entry = FlowEntry(match=match, actions=(Output(1),),
                          priority=priority)
        table.add(entry)
        entries.append(entry)
    victim = entries[drop % len(entries)]
    table.delete(match=victim.match, priority=victim.priority, strict=True)
    for frame, in_port in frames:
        parsed = parse_frame(frame)
        assert table.lookup(in_port, parsed, count=False) \
            is table.lookup_linear(in_port, parsed)
