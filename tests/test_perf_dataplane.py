"""Dataplane pps harness: fast sanity checks + the perf-marked sweep.

The ``perf``-marked test is the `pytest -m perf` entry point: it runs
the full table-size/chain-length sweep and writes the JSON artifact
(``--bench-json``, default ``BENCH_dataplane.json``).  The unmarked
tests keep the harness itself covered in tier-1 with tiny workloads.
"""

import json
import os

import pytest

from repro.perf.dataplane import (
    build_steering_table,
    check_fused_invalidation,
    check_results,
    count_chain_excess_parse_frame,
    count_fast_path_parse_cidr,
    format_results,
    run_dataplane_bench,
    sweep_chain,
    sweep_lookup,
    write_bench_json,
)
from repro.perf.dataplane import _steering_frames


def test_sweep_lookup_shape():
    points = sweep_lookup(sizes=(4, 16), packets=50)
    assert [p.table_size for p in points] == [4, 16]
    for point in points:
        assert point.linear_pps > 0 and point.indexed_pps > 0
        assert point.speedup == pytest.approx(
            point.indexed_pps / point.linear_pps)


def test_sweep_chain_delivers_everything():
    points = sweep_chain(lengths=(1, 3), packets=40)
    assert [p.chain_length for p in points] == [1, 3]
    for point in points:
        assert point.single_pps > 0 and point.batched_pps > 0
        assert point.fused_pps > 0
    # The multi-hop point must have gone through fused programs; the
    # single-hop point must not (fast_out is already optimal there).
    assert points[0].fused_hits == 0
    assert points[1].fused_hits > 0


def test_fast_path_parse_cidr_free():
    table = build_steering_table(64)
    workload = _steering_frames(64, 30, seed=3)
    assert count_fast_path_parse_cidr(table, workload) == 0


def test_chain_never_reparses_untouched_frames():
    """Structural zero-reparse: one parse_frame per frame per chain on
    the per-hop path, and *at most* one on the fused path — dispatch-hit
    frames are parked raw, so a plain fused chain delivers all 25 frames
    with zero parses (excess == -packets)."""
    for length in (1, 2, 4):
        assert count_chain_excess_parse_frame(length, packets=25) == 0
        fused_excess = count_chain_excess_parse_frame(length, packets=25,
                                                      fused=True)
        expected = 0 if length == 1 else -25
        assert fused_excess == expected, (
            "dispatch-hit frames should reach the terminal unparsed, "
            f"got excess {fused_excess} at length {length}")


def test_fused_invalidation_check_is_clean():
    """The invalidation-fallback probe: no stale frames, full
    fallback delivery, and a re-fuse afterwards."""
    outcome = check_fused_invalidation(packets=30)
    assert outcome["fused_before_flowmod"] == 30
    assert outcome["stale_frames_delivered"] == 0
    assert outcome["fallback_delivered"] == 30
    assert outcome["invalidations"] >= 1
    assert outcome["refused_after_retrace"] == 30


def test_quick_smoke_no_regression_gates():
    """The tier-1 perf smoke leg: a sub-second quick sweep held to the
    no-regression gates (point floors + both purity counters), so a
    perf breakage is caught without waiting for `pytest -m perf`."""
    results = run_dataplane_bench(quick=True)
    assert results["meta"]["quick"] is True
    assert [p["chain_length"] for p in results["chain"]] == [2]
    try:
        check_results(results)
    except AssertionError:
        # The floors sit far below the real speedups (~2x vs the 0.9x
        # gate), but this leg runs in tier-1 on whatever the CI box is
        # doing, so allow exactly one re-measure before declaring a
        # genuine regression.
        check_results(run_dataplane_bench(quick=True))


def test_quick_gates_catch_lookup_regression():
    """The quick gates are real: a doctored result dict with a lookup
    regression must fail even in quick mode."""
    results = run_dataplane_bench(quick=True)
    for point in results["lookup"]:
        point["speedup"] = 0.05
    with pytest.raises(AssertionError, match="lookup regressed"):
        check_results(results)


def test_quick_gates_catch_fusion_regressions():
    """The fused gates are real even in quick mode: a chain point with
    zero fused hits, and a stale-frame leak in the invalidation probe,
    must both fail."""
    results = run_dataplane_bench(quick=True)
    doctored = json.loads(json.dumps(results))
    for point in doctored["chain"]:
        point["fused_hits"] = 0
    with pytest.raises(AssertionError, match="fusion never engaged"):
        check_results(doctored)
    doctored = json.loads(json.dumps(results))
    doctored["fusion_invalidation"]["stale_frames_delivered"] = 7
    with pytest.raises(AssertionError, match="stale fused chain"):
        check_results(doctored)


def test_quick_gates_catch_tracing_overhead_regressions():
    """The tracing-overhead gates are real even in quick mode: a
    doctored ratio below the 97% floor, a sampler that fired during
    the timed leg, and a dead engagement probe must all fail."""
    results = run_dataplane_bench(quick=True)
    doctored = json.loads(json.dumps(results))
    doctored["tracing_overhead"]["ratio"] = 0.5
    with pytest.raises(AssertionError, match="tracing overhead too high"):
        check_results(doctored)
    doctored = json.loads(json.dumps(results))
    doctored["tracing_overhead"]["sampled_batches"] = 3
    with pytest.raises(AssertionError, match="measurement invalid"):
        check_results(doctored)
    doctored = json.loads(json.dumps(results))
    doctored["tracing_overhead"]["sampler_engaged"] = False
    with pytest.raises(AssertionError, match="never engaged"):
        check_results(doctored)


def test_quick_gates_catch_churn_regressions():
    """The churn gates are real even in quick mode: a remap fraction
    over the 1/min(N,N') bound, and any broken connection in the
    scale-cycle probe, must both fail."""
    results = run_dataplane_bench(quick=True)
    doctored = json.loads(json.dumps(results))
    doctored["churn"]["remap"]["steps"][1]["fraction"] = 0.9
    with pytest.raises(AssertionError, match="remapped"):
        check_results(doctored)
    doctored = json.loads(json.dumps(results))
    doctored["churn"]["cycle"]["broken_connections"] = 3
    with pytest.raises(AssertionError, match="connections broke"):
        check_results(doctored)
    doctored = json.loads(json.dumps(results))
    doctored["churn"]["cycle"]["state"]["adopted"] = 0
    with pytest.raises(AssertionError, match="adopted"):
        check_results(doctored)


def test_churn_bench_legs_directly():
    from repro.perf.churn import (
        measure_replica_churn,
        run_scale_cycle_probe,
    )
    remap = measure_replica_churn(flows=600, max_replicas=3, seed=3)
    # Ladder 1 -> 2 -> 3 -> 2 -> 1: four steps, every one in bound.
    assert len(remap["steps"]) == 4
    assert remap["worst_margin"] <= 0.05
    for step in remap["steps"]:
        assert step["moved"] <= step["flows"]
    cycle = run_scale_cycle_probe(phase1_flows=10, phase2_flows=20,
                                  data_frames=1, seed=3)
    assert cycle["broken_connections"] == 0
    assert cycle["state"]["adopted"] == 10
    assert cycle["replicas_used_during_spread"] == 3


def test_results_serialize_and_format():
    results = run_dataplane_bench(sizes=(4,), chain_lengths=(1,),
                                  lookup_packets=30, chain_packets=20)
    text = format_results(results)
    assert "speedup" in text and "parse_cidr" in text
    json.dumps(results)  # JSON-clean


@pytest.mark.perf
def test_dataplane_pps_sweep(request):
    """The full sweep; asserts the ≥10x target and writes the artifact.

    With ``--quick`` the sweep runs in the smoke configuration and the
    artifact is left untouched (trajectory files come from full runs).
    """
    quick = request.config.getoption("--quick")
    results = run_dataplane_bench(quick=quick)
    print("\n" + format_results(results))
    bench_path = request.config.getoption("--bench-json")
    if not quick:
        write_bench_json(results, bench_path)
        print(f"wrote {bench_path}")
        assert os.path.exists(bench_path)
    try:
        try:
            check_results(results)  # >=10x at 1k, parse_cidr-free
        except AssertionError:
            if not quick:
                raise
            # Quick mode shares the tier-1 smoke's one-retry policy:
            # its timing floors run on a loaded CI box, so re-measure
            # once before declaring a regression.
            results = run_dataplane_bench(quick=True)
            check_results(results)
    except AssertionError:
        # Freeze the flight-recorder dump + histogram snapshot from
        # the tracing probe next to the bench artifact so CI can
        # upload them on a failed perf job.
        flight_path = os.path.join(
            os.path.dirname(bench_path) or ".", "FLIGHT_dataplane.json")
        tracing = results.get("tracing_overhead", {})
        write_bench_json({
            "flight": tracing.get("flight"),
            "histograms": tracing.get("histograms"),
            "tracing_overhead": {
                k: v for k, v in tracing.items()
                if k not in ("flight", "histograms")},
            "meta": results.get("meta"),
        }, flight_path)
        print(f"wrote {flight_path}")
        raise
