"""Tests for Resource/Container/Store primitives."""

import pytest

from repro.sim import Container, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    r1, r2, r3 = resource.request(), resource.request(), resource.request()
    sim.run()
    assert r1.fired and r2.fired
    assert not r3.fired
    assert resource.count == 2


def test_resource_release_grants_queued():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    sim.run()
    assert first.fired and not second.fired
    resource.release(first)
    sim.run()
    assert second.fired


def test_resource_release_unheld_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    stranger = resource.request()
    resource.release(stranger)
    from repro.sim.engine import SimulationError
    with pytest.raises(SimulationError):
        resource.release(stranger)


def test_resource_fifo_order():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def worker(tag, hold):
        request = resource.request()
        yield request
        order.append((tag, sim.now))
        yield sim.timeout(hold)
        resource.release(request)

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 1.0))
    sim.process(worker("c", 1.0))
    sim.run()
    assert [tag for tag, _t in order] == ["a", "b", "c"]
    assert [t for _tag, t in order] == [0.0, 1.0, 2.0]


def test_container_put_get():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=10.0)
    tank.put(30.0)
    sim.run()
    assert tank.level == 40.0
    tank.get(15.0)
    sim.run()
    assert tank.level == 25.0


def test_container_get_blocks_until_stock():
    sim = Simulator()
    tank = Container(sim, capacity=100.0)
    got = []

    def consumer():
        yield tank.get(50.0)
        got.append(sim.now)

    def producer():
        yield sim.timeout(2.0)
        tank.put(50.0)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [2.0]


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=8.0)
    done = []

    def producer():
        yield tank.put(5.0)
        done.append(sim.now)

    def consumer():
        yield sim.timeout(3.0)
        tank.get(5.0)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert done == [3.0]
    assert tank.level == 8.0


def test_container_validates_amounts():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        tank.put(11)


def test_store_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(consumer())
    for item in ("x", "y", "z"):
        store.put(item)
    sim.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_until_item():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(4.0)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 4.0)]


def test_bounded_store_backpressure():
    sim = Simulator()
    store = Store(sim, capacity=1)
    done = []

    def producer():
        yield store.put("first")
        yield store.put("second")
        done.append(sim.now)

    def consumer():
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert done == [5.0]


def test_store_try_put_drops_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    sim.run()
    assert not store.try_put(3)
    assert len(store) == 2
