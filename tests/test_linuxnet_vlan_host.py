"""VLAN subinterfaces and LinuxHost plumbing tests."""

import pytest

from repro.linuxnet import LinuxHost, VethPair
from repro.linuxnet.cmdline import ScriptRunner
from repro.linuxnet.devices import NetDevice, VlanDevice
from repro.net import MacAddress, make_udp_frame, parse_frame

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


class TestVlanDevices:
    def test_demux_strips_tag(self):
        host = LinuxHost()
        ns = host.add_namespace("nnf")
        host.create_veth("t0", "mux0", ns_a="root", ns_b="nnf")
        trunk = ns.device("mux0")
        sub = VlanDevice(trunk, 101)
        ns.add_device(sub)
        trunk.set_up()
        sub.set_up()
        host.root.device("t0").set_up()
        received = []
        sub.attach_handler(lambda dev, frame: received.append(frame))
        host.root.device("t0").transmit(make_udp_frame(
            MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", 1, 2, b"x", vlan=101))
        assert len(received) == 1
        assert received[0].vlan is None  # tag stripped on demux

    def test_unmatched_vid_goes_to_parent_stack(self):
        host = LinuxHost()
        ns = host.add_namespace("nnf")
        host.create_veth("t0", "mux0", ns_a="root", ns_b="nnf")
        trunk = ns.device("mux0")
        sub = VlanDevice(trunk, 101)
        ns.add_device(sub)
        trunk.set_up()
        sub.set_up()
        host.root.device("t0").set_up()
        host.root.device("t0").transmit(make_udp_frame(
            MAC_A, MAC_B, "10.0.0.1", "10.0.0.2", 1, 2, b"x", vlan=202))
        # Tagged frame with no matching subinterface: the parent stack
        # sees a non-matching payload and counts it (not demuxed).
        assert sub.rx_packets == 0

    def test_transmit_tags_frames(self):
        host = LinuxHost()
        ns = host.add_namespace("nnf")
        host.create_veth("t0", "mux0", ns_a="root", ns_b="nnf")
        trunk = ns.device("mux0")
        sub = VlanDevice(trunk, 101)
        ns.add_device(sub)
        trunk.set_up()
        sub.set_up()
        outer = host.root.device("t0")
        outer.set_up()
        received = []
        outer.attach_handler(lambda dev, frame: received.append(frame))
        sub.transmit(make_udp_frame(MAC_A, MAC_B, "10.0.0.1", "10.0.0.2",
                                    1, 2, b"out"))
        assert received[0].vlan == 101

    def test_bad_vid_rejected(self):
        with pytest.raises(ValueError):
            VlanDevice(NetDevice("eth0"), 5000)

    def test_cmdline_creates_subinterface(self):
        host = LinuxHost()
        runner = ScriptRunner(host)
        runner.run_script([
            "ip netns add nnf",
            "ip link add t0 type veth peer name mux0",
            "ip link set mux0 netns nnf",
            "ip netns exec nnf ip link add link mux0 name mux0.7 "
            "type vlan id 7",
            "ip netns exec nnf ip link set mux0.7 up",
        ])
        sub = host.namespace("nnf").device("mux0.7")
        assert isinstance(sub, VlanDevice)
        assert sub.vid == 7 and sub.up


class TestLinuxHost:
    def test_root_namespace_protected(self):
        host = LinuxHost()
        with pytest.raises(ValueError):
            host.delete_namespace("root")

    def test_delete_namespace_severs_veth_peers(self):
        host = LinuxHost()
        host.add_namespace("a")
        pair = host.create_veth("x0", "x1", ns_a="root", ns_b="a")
        host.delete_namespace("a")
        assert pair.a.peer is None

    def test_move_device_between_namespaces(self):
        host = LinuxHost()
        host.add_namespace("a")
        host.create_veth("m0", "m1")
        host.move_device("m1", "root", "a")
        assert "m1" in host.namespace("a").devices
        assert "m1" not in host.root.devices

    def test_find_device_searches_all_namespaces(self):
        host = LinuxHost()
        ns = host.add_namespace("a")
        ns.add_device(NetDevice("hidden0"))
        found = host.find_device("hidden0")
        assert found is not None and found[0] is ns
        assert host.find_device("nope") is None

    def test_duplicate_namespace_rejected(self):
        host = LinuxHost()
        host.add_namespace("a")
        with pytest.raises(ValueError):
            host.add_namespace("a")

    def test_per_namespace_forward_sysctl(self):
        host = LinuxHost()
        host.add_namespace("fw")
        runner = ScriptRunner(host)
        runner.run("ip netns exec fw sysctl -w net.ipv4.ip_forward=1")
        assert host.namespace("fw").ip_forward
        assert not host.root.ip_forward
