"""iptables engine unit tests (traversal, targets, user chains)."""

import pytest

from repro.linuxnet.conntrack import ConnState
from repro.linuxnet.iptables import (
    IptablesError,
    Match,
    Rule,
    Ruleset,
    Verdict,
)
from repro.linuxnet.namespace import SkBuff
from repro.net.ipv4 import IPv4Packet
from repro.net.transport import UdpDatagram


def make_skb(src="10.0.0.1", dst="10.0.0.2", proto=17, sport=1111,
             dport=2222, in_iface="eth0", mark=0):
    datagram = UdpDatagram(src_port=sport, dst_port=dport, payload=b"")
    packet = IPv4Packet(src=src, dst=dst, proto=proto,
                        payload=datagram.to_bytes(src, dst))
    return SkBuff(ipv4=packet, in_iface=in_iface, mark=mark)


def test_default_policy_accept():
    ruleset = Ruleset()
    assert ruleset.traverse("filter", "INPUT", make_skb()) == Verdict.ACCEPT


def test_policy_drop():
    ruleset = Ruleset()
    ruleset.table("filter").chain("INPUT").policy = Verdict.DROP
    assert ruleset.traverse("filter", "INPUT", make_skb()) == Verdict.DROP


def test_first_match_wins():
    ruleset = Ruleset()
    ruleset.append("filter", "INPUT",
                   Rule(match=Match(src="10.0.0.1/32"), target="DROP"))
    ruleset.append("filter", "INPUT", Rule(match=Match(), target="ACCEPT"))
    assert ruleset.traverse("filter", "INPUT", make_skb()) == Verdict.DROP
    assert ruleset.traverse("filter", "INPUT",
                            make_skb(src="10.0.0.9")) == Verdict.ACCEPT


def test_match_criteria():
    rule = Rule(match=Match(in_iface="eth0", proto=17, dport=(2000, 3000)),
                target="DROP")
    ruleset = Ruleset()
    ruleset.append("filter", "INPUT", rule)
    assert ruleset.traverse("filter", "INPUT",
                            make_skb(dport=2222)) == Verdict.DROP
    assert ruleset.traverse("filter", "INPUT",
                            make_skb(dport=4000)) == Verdict.ACCEPT
    assert ruleset.traverse("filter", "INPUT",
                            make_skb(in_iface="eth1")) == Verdict.ACCEPT


def test_inverted_source_match():
    ruleset = Ruleset()
    ruleset.append("filter", "INPUT", Rule(
        match=Match(src="10.0.0.0/24", invert_src=True), target="DROP"))
    assert ruleset.traverse("filter", "INPUT",
                            make_skb(src="192.168.1.1")) == Verdict.DROP
    assert ruleset.traverse("filter", "INPUT",
                            make_skb(src="10.0.0.5")) == Verdict.ACCEPT


def test_mark_target_non_terminating():
    ruleset = Ruleset()
    ruleset.append("mangle", "PREROUTING", Rule(
        match=Match(), target="MARK", target_args={"set_mark": 0x5}))
    ruleset.append("mangle", "PREROUTING", Rule(
        match=Match(mark=(0x5, 0xFF)), target="DROP"))
    skb = make_skb()
    verdict = ruleset.traverse("mangle", "PREROUTING", skb)
    assert skb.mark == 0x5
    assert verdict == Verdict.DROP


def test_mark_with_mask_preserves_other_bits():
    ruleset = Ruleset()
    ruleset.append("mangle", "PREROUTING", Rule(
        match=Match(), target="MARK",
        target_args={"set_mark": 0x2, "mask": 0x0F}))
    skb = make_skb(mark=0xA0)
    ruleset.traverse("mangle", "PREROUTING", skb)
    assert skb.mark == 0xA2


def test_user_chain_jump_and_return():
    ruleset = Ruleset()
    table = ruleset.table("filter")
    table.new_chain("TENANT")
    ruleset.append("filter", "TENANT", Rule(
        match=Match(src="10.0.0.1/32"), target="DROP"))
    ruleset.append("filter", "TENANT", Rule(match=Match(), target="RETURN"))
    ruleset.append("filter", "INPUT", Rule(match=Match(), target="TENANT"))
    ruleset.append("filter", "INPUT", Rule(match=Match(), target="ACCEPT"))
    assert ruleset.traverse("filter", "INPUT", make_skb()) == Verdict.DROP
    assert ruleset.traverse("filter", "INPUT",
                            make_skb(src="10.0.0.7")) == Verdict.ACCEPT


def test_user_chain_fallthrough_resumes_caller():
    ruleset = Ruleset()
    table = ruleset.table("filter")
    table.new_chain("EMPTY")
    ruleset.append("filter", "INPUT", Rule(match=Match(), target="EMPTY"))
    ruleset.append("filter", "INPUT", Rule(match=Match(), target="DROP"))
    assert ruleset.traverse("filter", "INPUT", make_skb()) == Verdict.DROP


def test_jump_cycle_detected():
    ruleset = Ruleset()
    table = ruleset.table("filter")
    table.new_chain("A")
    table.new_chain("B")
    ruleset.append("filter", "A", Rule(match=Match(), target="B"))
    ruleset.append("filter", "B", Rule(match=Match(), target="A"))
    ruleset.append("filter", "INPUT", Rule(match=Match(), target="A"))
    with pytest.raises(IptablesError, match="depth"):
        ruleset.traverse("filter", "INPUT", make_skb())


def test_delete_builtin_chain_rejected():
    ruleset = Ruleset()
    with pytest.raises(IptablesError):
        ruleset.table("filter").delete_chain("INPUT")


def test_delete_referenced_chain_rejected():
    ruleset = Ruleset()
    table = ruleset.table("filter")
    table.new_chain("USED")
    ruleset.append("filter", "INPUT", Rule(match=Match(), target="USED"))
    with pytest.raises(IptablesError, match="referenced"):
        table.delete_chain("USED")


def test_snat_outside_nat_table_rejected():
    ruleset = Ruleset()
    ruleset.append("filter", "INPUT", Rule(
        match=Match(), target="SNAT", target_args={"to_ip": "1.1.1.1"}))
    with pytest.raises(IptablesError):
        ruleset.traverse("filter", "INPUT", make_skb())


def test_ctstate_match():
    from repro.linuxnet.conntrack import ConnTrack, FlowTuple
    conntrack = ConnTrack()
    entry = conntrack.create(FlowTuple("10.0.0.1", "10.0.0.2", 17, 1111,
                                       2222))
    ruleset = Ruleset()
    ruleset.append("filter", "INPUT", Rule(
        match=Match(ctstate=frozenset({ConnState.NEW})), target="DROP"))
    skb = make_skb()
    skb.ct_entry = entry
    skb.ct_is_new = True
    assert ruleset.traverse("filter", "INPUT", skb) == Verdict.DROP
    skb.ct_is_new = False
    entry.state = ConnState.ESTABLISHED
    assert ruleset.traverse("filter", "INPUT", skb) == Verdict.ACCEPT


def test_rule_counters():
    ruleset = Ruleset()
    rule = Rule(match=Match(), target="ACCEPT")
    ruleset.append("filter", "INPUT", rule)
    ruleset.traverse("filter", "INPUT", make_skb())
    ruleset.traverse("filter", "INPUT", make_skb())
    assert rule.packets == 2
    assert rule.bytes > 0


def test_list_rules_dump():
    ruleset = Ruleset()
    ruleset.table("nat").new_chain("CUSTOM")
    ruleset.append("nat", "POSTROUTING", Rule(
        match=Match(out_iface="wan0"), target="MASQUERADE"))
    dump = ruleset.list_rules("nat")
    assert "-N CUSTOM" in dump
    assert any("MASQUERADE" in line and "wan0" in line for line in dump)
