"""Route table / LPM tests."""

import pytest
from hypothesis import given, strategies as st

from repro.linuxnet import Route, RouteTable
from repro.net import int_to_ip


def test_longest_prefix_wins():
    table = RouteTable()
    table.add_cidr("10.0.0.0/8", "eth0")
    table.add_cidr("10.1.0.0/16", "eth1")
    table.add_cidr("10.1.2.0/24", "eth2")
    assert table.lookup("10.1.2.3").device == "eth2"
    assert table.lookup("10.1.9.9").device == "eth1"
    assert table.lookup("10.9.9.9").device == "eth0"


def test_default_route_catches_everything():
    table = RouteTable()
    table.add_cidr("0.0.0.0/0", "wan0", gateway="192.0.2.1")
    route = table.lookup("8.8.8.8")
    assert route.device == "wan0"
    assert route.gateway == "192.0.2.1"


def test_no_route_returns_none():
    table = RouteTable()
    table.add_cidr("10.0.0.0/8", "eth0")
    assert table.lookup("192.168.1.1") is None


def test_metric_breaks_ties():
    table = RouteTable()
    table.add_cidr("10.0.0.0/8", "slow", metric=100)
    table.add_cidr("10.0.0.0/8", "fast", metric=10)
    assert table.lookup("10.1.1.1").device == "fast"


def test_duplicate_route_rejected():
    table = RouteTable()
    table.add_cidr("10.0.0.0/8", "eth0")
    with pytest.raises(ValueError):
        table.add_cidr("10.0.0.0/8", "eth0")


def test_remove_device_routes():
    table = RouteTable()
    table.add_cidr("10.0.0.0/8", "eth0")
    table.add_cidr("172.16.0.0/12", "eth0")
    table.add_cidr("192.168.0.0/16", "eth1")
    assert table.remove_device("eth0") == 2
    assert len(table) == 1
    assert table.lookup("10.1.1.1") is None


def test_remove_missing_route_raises():
    table = RouteTable()
    route = Route.parse("10.0.0.0/8", "eth0")
    with pytest.raises(KeyError):
        table.remove(route)


def test_host_route_beats_subnet():
    table = RouteTable()
    table.add_cidr("10.0.0.0/24", "lan")
    table.add_cidr("10.0.0.5/32", "dmz")
    assert table.lookup("10.0.0.5").device == "dmz"
    assert table.lookup("10.0.0.6").device == "lan"


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_default_plus_specific_always_resolves(value):
    table = RouteTable()
    table.add_cidr("0.0.0.0/0", "default")
    table.add_cidr("10.0.0.0/8", "ten")
    route = table.lookup(int_to_ip(value))
    assert route is not None
    in_ten = (value >> 24) == 10
    assert (route.device == "ten") == in_ten
