"""Codec round-trips plus controller<->agent integration."""

import pytest
from hypothesis import given, strategies as st

from repro.linuxnet import VethPair
from repro.net import MacAddress, make_udp_frame
from repro.openflow import ControlChannel, LsiController, SwitchAgent
from repro.openflow.messages import (
    CodecError,
    FlowModCommand,
    OfpType,
    decode_message,
    encode_flow_mod,
    encode_hello,
    encode_packet_in,
    encode_packet_out,
)
from repro.switch import (
    Datapath,
    FlowMatch,
    Output,
    PopVlan,
    PushVlan,
    SetField,
)

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")


class TestCodec:
    def test_hello_roundtrip(self):
        message = decode_message(encode_hello(7))
        assert message.msg_type is OfpType.HELLO
        assert message.xid == 7

    def test_flow_mod_roundtrip_full_match(self):
        match = FlowMatch(in_port=3, eth_src=MAC_A, eth_dst=MAC_B,
                          eth_type=0x0800, vlan_vid=42,
                          ip_src="10.0.0.0/24", ip_dst="192.168.1.5/32",
                          ip_proto=17, tp_src=1000, tp_dst=2000)
        actions = (PushVlan(7), SetField("eth_dst", MAC_A), PopVlan(),
                   Output(9))
        data = encode_flow_mod(1, FlowModCommand.ADD, match, actions,
                               priority=5, cookie=0xDEAD)
        message = decode_message(data)
        assert message.command is FlowModCommand.ADD
        assert message.match == match
        assert tuple(message.actions) == actions
        assert message.priority == 5
        assert message.cookie == 0xDEAD

    def test_flow_mod_wildcard_match(self):
        data = encode_flow_mod(2, FlowModCommand.DELETE, FlowMatch(), ())
        message = decode_message(data)
        assert message.match == FlowMatch()
        assert message.actions == []

    def test_select_output_roundtrip(self):
        from repro.switch import SelectOutput
        actions = (PopVlan(), SelectOutput((4, 9, 17)))
        data = encode_flow_mod(3, FlowModCommand.ADD,
                               FlowMatch(in_port=1), actions)
        message = decode_message(data)
        assert tuple(message.actions) == actions

    def test_select_output_group_roundtrip(self):
        # The state-group id travels the wire with the port list —
        # including non-ASCII group names — and its absence decodes to
        # a stateless (group=None) spread.
        from repro.switch import SelectOutput
        for group in ("eg/dpi:in", "gräph/nf:0"):
            actions = (SelectOutput((4, 9, 17), group=group),)
            data = encode_flow_mod(3, FlowModCommand.ADD,
                                   FlowMatch(in_port=1), actions)
            message = decode_message(data)
            assert tuple(message.actions) == actions
            assert message.actions[0].group == group
        stateless = (SelectOutput((4, 9)),)
        message = decode_message(encode_flow_mod(
            4, FlowModCommand.ADD, FlowMatch(in_port=1), stateless))
        assert message.actions[0].group is None

    def test_select_output_malformed_group_raises_codec_error(self):
        # A trailing-garbage or bad-flag group tail is a wire error.
        import struct
        from repro.openflow import messages
        two_ports = struct.pack("!HH", 4, 9)
        for tail in (b"\x02abc", b"\x00junk"):
            payload = struct.pack("!H", 2) + two_ports + tail
            record = struct.pack("!BB", 7, len(payload)) + payload
            data = struct.pack("!H", len(record)) + record
            with pytest.raises(CodecError):
                messages._decode_actions(data, 0)

    def test_malformed_select_output_raises_codec_error(self):
        # An empty (count=0) or truncated select record must surface
        # as a CodecError (the malformed-wire contract), never a
        # ValueError escaping from the action constructor.
        import struct
        from repro.openflow import messages
        empty_select = struct.pack("!H", 4) \
            + struct.pack("!BB", 7, 2) + b"\x00\x00"
        with pytest.raises(CodecError):
            messages._decode_actions(empty_select, 0)
        truncated = struct.pack("!H", 3) \
            + struct.pack("!BB", 7, 1) + b"\x00"
        with pytest.raises(CodecError):
            messages._decode_actions(truncated, 0)

    def test_negative_vlan_sentinels_roundtrip(self):
        from repro.switch.flowtable import ANY_VLAN, NO_VLAN
        for sentinel in (ANY_VLAN, NO_VLAN):
            data = encode_flow_mod(1, FlowModCommand.ADD,
                                   FlowMatch(vlan_vid=sentinel), ())
            assert decode_message(data).match.vlan_vid == sentinel

    def test_packet_in_roundtrip(self):
        frame = make_udp_frame(MAC_A, MAC_B, "1.1.1.1", "2.2.2.2", 1, 2,
                               b"payload").to_bytes()
        message = decode_message(encode_packet_in(9, 4, 0, frame))
        assert message.in_port == 4
        assert message.frame == frame

    def test_packet_out_roundtrip(self):
        frame = make_udp_frame(MAC_A, MAC_B, "1.1.1.1", "2.2.2.2", 1, 2,
                               b"x").to_bytes()
        data = encode_packet_out(3, 0, (Output(5),), frame)
        message = decode_message(data)
        assert message.actions == [Output(5)]
        assert message.frame == frame

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"\x01\x00")

    def test_length_mismatch_rejected(self):
        data = bytearray(encode_hello(1))
        data.extend(b"junk")
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    def test_bad_version_rejected(self):
        data = bytearray(encode_hello(1))
        data[0] = 9
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_flow_mod_priority_cookie_property(self, priority, cookie):
        data = encode_flow_mod(1, FlowModCommand.ADD, FlowMatch(in_port=1),
                               (Output(2),), priority=priority,
                               cookie=cookie)
        message = decode_message(data)
        assert message.priority == priority
        assert message.cookie == cookie


def wired_pair():
    dp = Datapath(0x42, name="lsi-test")
    channel = ControlChannel()
    agent = SwitchAgent(dp, channel)
    controller = LsiController(channel, name="test-ctrl")
    return dp, channel, agent, controller


class TestControllerAgent:
    def test_handshake_discovers_dpid_and_ports(self):
        dp, _channel, _agent, controller = wired_pair()
        dp.add_port("port-a")
        dp.add_port("port-b")
        controller.handshake()
        assert controller.dpid == 0x42
        assert controller.ports == {1: "port-a", 2: "port-b"}

    def test_flow_add_lands_in_table(self):
        dp, _channel, agent, controller = wired_pair()
        controller.handshake()
        controller.flow_add(FlowMatch(in_port=1), (Output(2),), priority=9)
        assert len(dp.table) == 1
        (entry,) = list(dp.table)
        assert entry.priority == 9
        assert agent.flow_mods_applied == 1

    def test_flow_delete_by_cookie_tears_down_graph_rules(self):
        dp, _channel, _agent, controller = wired_pair()
        controller.handshake()
        controller.flow_add(FlowMatch(in_port=1), (Output(2),), cookie=0xA1)
        controller.flow_add(FlowMatch(in_port=2), (Output(1),), cookie=0xA1)
        controller.flow_add(FlowMatch(in_port=3), (Output(1),), cookie=0xB2)
        controller.flow_delete_by_cookie(0xA1)
        assert len(dp.table) == 1

    def test_table_miss_reaches_controller_as_packet_in(self):
        dp, _channel, _agent, controller = wired_pair()
        punted = []
        controller.packet_in_callback = lambda port, raw: punted.append(port)
        controller.handshake()
        pair = VethPair("sw0", "nf0")
        pair.b.set_up()
        dp.add_port("sw0", device=pair.a)
        pair.b.transmit(make_udp_frame(MAC_A, MAC_B, "1.1.1.1", "2.2.2.2",
                                       1, 2, b"miss"))
        assert controller.packet_ins == 1
        assert punted == [1]

    def test_packet_out_injects_frame(self):
        dp, _channel, _agent, controller = wired_pair()
        controller.handshake()
        pair = VethPair("sw0", "nf0")
        received = []
        pair.b.set_up()
        pair.b.attach_handler(lambda dev, fr: received.append(fr))
        dp.add_port("sw0", device=pair.a)
        frame = make_udp_frame(MAC_A, MAC_B, "1.1.1.1", "2.2.2.2", 1, 2,
                               b"out")
        controller.packet_out(0, (Output(1),), frame.to_bytes())
        assert len(received) == 1

    def test_flow_stats_roundtrip(self):
        dp, _channel, _agent, controller = wired_pair()
        controller.handshake()
        controller.flow_add(FlowMatch(in_port=1), (Output(2),), priority=11)
        rows = controller.flow_stats()
        assert len(rows) == 1
        priority, packets, nbytes, match = rows[0]
        assert priority == 11
        assert packets == 0
        assert match == FlowMatch(in_port=1)

    def test_port_stats_roundtrip(self):
        dp, _channel, _agent, controller = wired_pair()
        dp.add_port("a")
        controller.handshake()
        rows = controller.port_stats()
        assert rows == [(1, 0, 0, 0, 0)]

    def test_channel_counts_messages(self):
        _dp, channel, _agent, controller = wired_pair()
        controller.handshake()
        assert channel.messages_exchanged >= 4  # hello x2, features req/rep
