"""IKE daemon tests: negotiation over the live dataplane, rekeying."""

import pytest

from repro.ipsec.ike import IKE_PORT, IkeDaemon, IkeError
from repro.linuxnet import LinuxHost


def tunnel_hosts():
    """Two namespaces cabled together with outer + inner addressing."""
    host = LinuxHost()
    left = host.add_namespace("left")
    right = host.add_namespace("right")
    host.create_veth("l0", "r0", ns_a="left", ns_b="right")
    left.device("l0").add_address("203.0.113.1", 24)
    right.device("r0").add_address("203.0.113.2", 24)
    left.device("l0").set_up()
    right.device("r0").set_up()
    left.device("lo").add_address("192.168.100.1", 32)
    right.device("lo").add_address("192.168.200.1", 32)
    left.routes.add_cidr("192.168.200.0/24", "l0")
    right.routes.add_cidr("192.168.100.0/24", "r0")
    return host, left, right


def daemons(left, right, psk=b"shared-secret"):
    initiator = IkeDaemon(left, local="203.0.113.1", psk=psk,
                          local_subnet="192.168.100.0/24",
                          remote_subnet="192.168.200.0/24")
    responder = IkeDaemon(right, local="203.0.113.2", psk=psk,
                          local_subnet="192.168.200.0/24",
                          remote_subnet="192.168.100.0/24")
    return initiator, responder


def test_negotiation_installs_sas_both_sides():
    _host, left, right = tunnel_hosts()
    initiator, responder = daemons(left, right)
    initiator.initiate("203.0.113.2")
    assert initiator.established == ["203.0.113.2"]
    assert len(left.xfrm.states()) == 2
    assert len(right.xfrm.states()) == 2
    assert len(left.xfrm.policies()) == 2
    assert len(right.xfrm.policies()) == 2


def test_negotiated_tunnel_carries_traffic():
    _host, left, right = tunnel_hosts()
    initiator, _responder = daemons(left, right)
    initiator.initiate("203.0.113.2")
    inbox = []
    right.bind_udp(7777, lambda ns, pkt, dgram: inbox.append(
        (pkt.src, dgram.payload)))
    left.send_udp("192.168.100.1", "192.168.200.1", 1234, 7777,
                  b"over ike-negotiated tunnel")
    assert inbox == [("192.168.100.1", b"over ike-negotiated tunnel")]
    assert left.esp_out == 1
    assert right.esp_in == 1


def test_unreachable_peer_raises():
    _host, left, right = tunnel_hosts()
    initiator, responder = daemons(left, right)
    responder.close()  # daemon not listening
    with pytest.raises(IkeError, match="did not complete"):
        initiator.initiate("203.0.113.2")


def test_mismatched_psk_yields_broken_tunnel():
    _host, left, right = tunnel_hosts()
    initiator = IkeDaemon(left, local="203.0.113.1", psk=b"alpha",
                          local_subnet="192.168.100.0/24",
                          remote_subnet="192.168.200.0/24")
    IkeDaemon(right, local="203.0.113.2", psk=b"beta",
              local_subnet="192.168.200.0/24",
              remote_subnet="192.168.100.0/24")
    # The nonce exchange itself succeeds (no auth in the toy protocol)…
    initiator.initiate("203.0.113.2")
    inbox = []
    right.bind_udp(7777, lambda ns, pkt, dgram: inbox.append(dgram))
    left.send_udp("192.168.100.1", "192.168.200.1", 1, 7777, b"x")
    # …but the derived keys differ, so ESP authentication fails.
    assert inbox == []
    assert right.esp_errors == 1


def test_rekey_replaces_sas_and_keeps_traffic_flowing():
    _host, left, right = tunnel_hosts()
    initiator, responder = daemons(left, right)
    initiator.initiate("203.0.113.2")
    old_spis = {state.sa.spi for state in left.xfrm.states()}
    inbox = []
    right.bind_udp(7777, lambda ns, pkt, dgram: inbox.append(dgram))
    left.send_udp("192.168.100.1", "192.168.200.1", 1, 7777, b"before")

    initiator.rekey("203.0.113.2")
    responder_side = {state.sa.spi for state in right.xfrm.states()}
    new_spis = {state.sa.spi for state in left.xfrm.states()}
    assert initiator.rekeys == 1
    assert new_spis.isdisjoint(old_spis)
    left.send_udp("192.168.100.1", "192.168.200.1", 1, 7777, b"after")
    assert len(inbox) == 2


def test_empty_psk_rejected():
    _host, left, _right = tunnel_hosts()
    with pytest.raises(IkeError):
        IkeDaemon(left, local="203.0.113.1", psk=b"",
                  local_subnet="0.0.0.0/0", remote_subnet="0.0.0.0/0")


def test_garbage_on_port_500_ignored():
    _host, left, right = tunnel_hosts()
    daemons(left, right)
    left.send_udp("203.0.113.1", "203.0.113.2", IKE_PORT, IKE_PORT,
                  b"not an ike message")
    assert right.xfrm.states() == []
