"""Differential harness: the five chain-traversal modes are identical.

Hypothesis generates flow tables (random per-hop action shapes, VLAN
matching, low-priority CIDR fallbacks) and frame batches, then runs the
same workload through five independently-built copies of the same LSI
chain (lengths 1, 2 and 4):

1. **per-frame** — :meth:`Datapath.process` for every frame, the
   reference semantics;
2. **reparse batch** — the batched pipeline with ``carry_parsed=False``
   on every virtual link, i.e. the old re-parse-at-every-hop cost
   model;
3. **per-hop zero-reparse batch** — ``ParsedFrame`` carry across the
   links with chain fusion pinned off: the fusion fallback path, and
   the fused path's differential oracle;
4. **fused** — chain fusion on with per-port dispatch pinned off:
   stable chains compiled into straight-line programs
   (:mod:`repro.switch.fusion`) behind the normal ingress lookup,
   with all per-hop counters settled arithmetically at flush;
5. **dispatch-fused** — the production configuration: fusion *and*
   the per-port dispatch layer, so eligible ``(in_port, vlan)``
   slices skip the ingress ``FlowTable`` walk entirely.

Every observable must agree across all five: egress frames
byte-for-byte at every capture point, per-port rx/tx packet and byte
counters, per-entry flow counters, table lookup/match totals, miss /
drop / action-error counts, and controller punts.
"""

from hypothesis import given, settings, strategies as st

from repro.linuxnet import VethPair
from repro.net import MacAddress, make_udp_frame
from repro.switch import (
    Controller,
    Datapath,
    FlowEntry,
    FlowMatch,
    Output,
    PopVlan,
    PushVlan,
    SelectOutput,
    SetField,
    VirtualLink,
)
from repro.switch.flowtable import ANY_VLAN, NO_VLAN

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")
NEW_MAC = "02:00:00:00:00:99"

CHAIN_LENGTHS = (1, 2, 4)

#: Per-hop action shapes; ``fwd`` is the port towards the next hop (or
#: the final sink), ``tee`` a local capture port.  No FLOOD — a flood
#: towards the backward link port would loop the chain.
_SHAPES = {
    "out": lambda fwd, tee, vid: (Output(fwd),),
    "push_out": lambda fwd, tee, vid: (PushVlan(vid), Output(fwd)),
    "pop_out": lambda fwd, tee, vid: (PopVlan(), Output(fwd)),
    "retag_out": lambda fwd, tee, vid: (PopVlan(), PushVlan(vid),
                                        Output(fwd)),
    "setdst_out": lambda fwd, tee, vid: (SetField("eth_dst", NEW_MAC),
                                         Output(fwd)),
    "setdst_push_out": lambda fwd, tee, vid: (SetField("eth_dst", NEW_MAC),
                                              PushVlan(vid), Output(fwd)),
    "setvid_out": lambda fwd, tee, vid: (SetField("vlan_vid", vid),
                                         Output(fwd)),
    "tee_out": lambda fwd, tee, vid: (Output(tee), Output(fwd)),
    # Hash-LB hops: the rendezvous spread (stateless) and the stateful
    # per-flow table in front of it.  Both split the batch per flow;
    # as chain *terminals* they fuse per-replica (FusedSelectChain),
    # with the pick itself still computed per frame.
    "select_out": lambda fwd, tee, vid: (SelectOutput((fwd, tee)),),
    "pin_select_out": lambda fwd, tee, vid: (
        SelectOutput((fwd, tee), group="eq/lb:in"),),
    "pop_select_out": lambda fwd, tee, vid: (PopVlan(),
                                             SelectOutput((fwd, tee))),
    "drop": lambda fwd, tee, vid: (),
    "punt": lambda fwd, tee, vid: (Controller(),),
}

hop_spec = st.fixed_dictionaries({
    "shape": st.sampled_from(sorted(_SHAPES)),
    "vid": st.integers(min_value=1, max_value=5),
    # How the hop's primary entry matches VLANs: wildcard, exact id,
    # tagged-any or untagged-only.
    "match_vlan": st.sampled_from(["wild", "exact", "any", "none"]),
    "match_vid": st.integers(min_value=1, max_value=5),
    # Optional low-priority CIDR fallback (exercises the carried
    # ParsedFrame's lazy IPv4 decode at hops > 0).
    "cidr": st.sampled_from([None, "10.0.0.0/8", "11.0.0.0/8"]),
})

frame_spec = st.fixed_dictionaries({
    "vlan": st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    "sport": st.integers(min_value=1000, max_value=1005),
    "dst_net": st.sampled_from([10, 11, 12]),
    "payload": st.binary(min_size=1, max_size=6),
})


def _capture(datapath, name):
    """Device-backed port whose far veth end records egress bytes."""
    pair = VethPair(f"{name}-sw", f"{name}-wire")
    received = []
    pair.b.set_up()
    pair.b.attach_handler(lambda dev, fr: received.append(fr.to_bytes()))
    port = datapath.add_port(name, device=pair.a)
    return port, received


class ChainInstance:
    """One independent build of the generated chain scenario."""

    def __init__(self, length, hop_specs):
        self.hops = [Datapath(0x4000 + i, name=f"hop{i}")
                     for i in range(length)]
        self.links = []
        self.captures = {}   # capture name -> list of egress bytes
        self.punts = []      # (hop name, in_port, frame bytes)

        self.hops[0].add_port("ingress")
        in_ports = [1]
        for left, right in zip(self.hops, self.hops[1:]):
            link = VirtualLink.connect(left, right, name=f"vl-{left.name}")
            self.links.append(link)
            in_ports.append(link.far_port(right).port_no)

        for index, (hop, spec) in enumerate(zip(self.hops, hop_specs)):
            hop.packet_in_handler = (
                lambda dp, port, fr: self.punts.append(
                    (dp.name, port, fr.to_bytes())))
            tee_port, tee_rx = _capture(hop, f"tee{index}")
            self.captures[f"tee{index}"] = tee_rx
            if index + 1 < length:
                fwd_no = self.links[index].far_port(hop).port_no
            else:
                final_port, final_rx = _capture(hop, "final")
                self.captures["final"] = final_rx
                fwd_no = final_port.port_no
            cidr_port, cidr_rx = _capture(hop, f"cidr{index}")
            self.captures[f"cidr{index}"] = cidr_rx

            vlan_mode = spec["match_vlan"]
            vlan_vid = {"wild": None, "exact": spec["match_vid"],
                        "any": ANY_VLAN, "none": NO_VLAN}[vlan_mode]
            actions = _SHAPES[spec["shape"]](fwd_no, tee_port.port_no,
                                             spec["vid"])
            hop.install(FlowEntry(
                match=FlowMatch(in_port=in_ports[index], vlan_vid=vlan_vid),
                actions=actions, priority=100))
            if spec["cidr"] is not None:
                hop.install(FlowEntry(
                    match=FlowMatch(in_port=in_ports[index],
                                    ip_dst=spec["cidr"]),
                    actions=(Output(cidr_port.port_no),), priority=10))

    def observe(self):
        state = {"captures": {name: list(rx)
                              for name, rx in self.captures.items()},
                 "punts": sorted(self.punts)}
        for hop in self.hops:
            state[hop.name] = {
                "rx": hop.rx_packets, "misses": hop.table_misses,
                "dropped": hop.dropped, "errors": hop.action_errors,
                "ports": {n: (p.rx_packets, p.rx_bytes,
                              p.tx_packets, p.tx_bytes)
                          for n, p in hop.ports.items()},
                "flows": [(e.priority, e.match.describe(),
                           e.packets, e.bytes) for e in hop.table],
                "lookups": hop.table.lookups,
                "matches": hop.table.matches,
            }
        return state


def _frames(frame_specs):
    return [make_udp_frame(MAC_A, MAC_B, "10.0.0.1",
                           f"{spec['dst_net']}.0.0.2",
                           spec["sport"], 2000, spec["payload"],
                           vlan=spec["vlan"])
            for spec in frame_specs]


@given(hop_specs=st.lists(hop_spec, min_size=max(CHAIN_LENGTHS),
                          max_size=max(CHAIN_LENGTHS)),
       frame_specs=st.lists(frame_spec, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_five_traversal_modes_are_identical(hop_specs, frame_specs):
    for length in CHAIN_LENGTHS:
        specs = hop_specs[:length]

        per_frame = ChainInstance(length, specs)
        for frame in _frames(frame_specs):
            per_frame.hops[0].process(1, frame)

        reparse = ChainInstance(length, specs)
        for link in reparse.links:
            link.carry_parsed = False
        reparse.hops[0].process_batch(
            [(1, frame) for frame in _frames(frame_specs)])

        zero_reparse = ChainInstance(length, specs)
        for hop in zero_reparse.hops:
            hop.fusion.enabled = False
        zero_reparse.hops[0].process_batch_from(1, _frames(frame_specs))

        fused = ChainInstance(length, specs)
        for hop in fused.hops:
            hop.fusion.dispatch_enabled = False
        fused.hops[0].process_batch_from(1, _frames(frame_specs))

        dispatch = ChainInstance(length, specs)
        dispatch.hops[0].process_batch_from(1, _frames(frame_specs))

        reference = per_frame.observe()
        assert reparse.observe() == reference, f"chain length {length}"
        assert zero_reparse.observe() == reference, f"chain length {length}"
        assert fused.observe() == reference, f"chain length {length}"
        assert dispatch.observe() == reference, f"chain length {length}"


def test_interpreted_batch_mode_matches_too():
    """The differential holds with compiled actions disabled (the
    interpreted batch leg the perf sweep's baseline uses)."""
    specs = [{"shape": "retag_out", "vid": 3, "match_vlan": "wild",
              "match_vid": 1, "cidr": "10.0.0.0/8"}] * 4
    frame_specs = [{"vlan": v, "sport": 1000 + i, "dst_net": 10 + i % 3,
                    "payload": bytes([i])}
                   for i, v in enumerate([None, 1, 2, None, 5])]

    compiled = ChainInstance(4, specs)
    compiled.hops[0].process_batch_from(1, _frames(frame_specs))

    interpreted = ChainInstance(4, specs)
    for hop in interpreted.hops:
        hop.compiled_actions = False
    interpreted.hops[0].process_batch_from(1, _frames(frame_specs))

    assert interpreted.observe() == compiled.observe()


def _mid_batch_flow_mod_instance():
    """A chain-2 whose packet-in handler retargets the downstream hop
    mid-batch: frame 2 (tagged) misses the untagged-only ingress entry,
    punts, and the punt handler flow-mods hop1's forwarding entry to a
    fresh capture port — while frames 1 and 3 are still in flight."""
    specs = [{"shape": "out", "vid": 1, "match_vlan": "none",
              "match_vid": 1, "cidr": None},
             {"shape": "out", "vid": 1, "match_vlan": "wild",
              "match_vid": 1, "cidr": None}]
    chain = ChainInstance(2, specs)
    hop1 = chain.hops[1]
    retarget_port, retarget_rx = _capture(hop1, "retarget")
    chain.captures["retarget"] = retarget_rx
    victim = next(e for e in hop1.table if e.priority == 100)
    record_punt = chain.hops[0].packet_in_handler

    def punt_and_flow_mod(dp, port, frame):
        record_punt(dp, port, frame)
        hop1.install(FlowEntry(match=victim.match,
                               actions=(Output(retarget_port.port_no),),
                               priority=victim.priority))

    chain.hops[0].packet_in_handler = punt_and_flow_mod
    return chain


def test_mid_batch_flow_mod_forces_fallback_and_matches_per_hop():
    """A flow-mod landing *mid-batch* (from a packet-in handler) must
    invalidate the fused chain at flush and fall back to the per-hop
    path — byte-for-byte and counter-for-counter identical to the
    per-hop batch mode, with every frame reaching the *new* terminal.

    (Per-frame mode legitimately differs here: it would deliver frame
    1 to the old terminal before the flow-mod lands.  Batch semantics
    flush egress after handlers run, in both batch modes alike.)
    """
    frame_specs = [{"vlan": None, "sport": 1000, "dst_net": 10,
                    "payload": b"a"},
                   {"vlan": 3, "sport": 1001, "dst_net": 10,
                    "payload": b"b"},
                   {"vlan": None, "sport": 1002, "dst_net": 10,
                    "payload": b"c"}]

    fused = _mid_batch_flow_mod_instance()
    fused.hops[0].process_batch_from(1, _frames(frame_specs))

    per_hop = _mid_batch_flow_mod_instance()
    for hop in per_hop.hops:
        hop.fusion.enabled = False
    per_hop.hops[0].process_batch_from(1, _frames(frame_specs))

    assert fused.observe() == per_hop.observe()
    # Both untagged frames took the new terminal; none the old one.
    assert len(fused.captures["retarget"]) == 2
    assert fused.captures["final"] == []
    # The fused instance really fused, went stale, and fell back.
    engine = fused.hops[0].fusion
    assert engine.invalidations == 1
    assert engine.hits == 0 and engine.misses == 2
    # The chain re-fuses against the new rule set on the next batch.
    fused.hops[0].process_batch_from(
        1, _frames([frame_specs[0]]))
    assert engine.hits == 1
    assert len(fused.captures["retarget"]) == 3


def test_select_output_fuses_per_replica_and_modes_agree():
    """A chain ending in a hash-LB hop fuses per-replica
    (:class:`~repro.switch.fusion.FusedSelectChain`): the per-flow —
    even stateful — replica pick runs *inside* the fused program, and
    all five traversal modes stay identical."""
    for terminal in ("select_out", "pin_select_out"):
        specs = [{"shape": "out", "vid": 1, "match_vlan": "wild",
                  "match_vid": 1, "cidr": None},
                 {"shape": terminal, "vid": 1, "match_vlan": "wild",
                  "match_vid": 1, "cidr": None}]
        frame_specs = [{"vlan": None, "sport": 1000 + i,
                        "dst_net": 10 + i % 3, "payload": bytes([i])}
                       for i in range(8)]

        per_frame = ChainInstance(2, specs)
        for frame in _frames(frame_specs):
            per_frame.hops[0].process(1, frame)

        reparse = ChainInstance(2, specs)
        for link in reparse.links:
            link.carry_parsed = False
        reparse.hops[0].process_batch(
            [(1, frame) for frame in _frames(frame_specs)])

        zero_reparse = ChainInstance(2, specs)
        for hop in zero_reparse.hops:
            hop.fusion.enabled = False
        zero_reparse.hops[0].process_batch_from(1, _frames(frame_specs))

        fused = ChainInstance(2, specs)
        fused.hops[0].process_batch_from(1, _frames(frame_specs))

        reference = per_frame.observe()
        assert reparse.observe() == reference, terminal
        assert zero_reparse.observe() == reference, terminal
        assert fused.observe() == reference, terminal
        # The production instance really fused the LB chain: every
        # frame went through the per-replica fused program.
        engine = fused.hops[0].fusion
        assert engine.hits == len(frame_specs), terminal
        assert engine.programs_built == 1, terminal
        assert engine.dispatch_hits > 0, terminal
        # The spread actually split the batch: both the forward port
        # (-> final capture) and the tee saw traffic.
        assert reference["captures"]["final"], terminal
        assert reference["captures"]["tee1"], terminal


def _replica_change_instance():
    """A chain-2 ending in a stateful spread whose replica set grows
    mid-batch: a tagged frame misses the untagged-only ingress entry,
    punts, and the punt handler reinstalls hop1's LB entry with a
    third replica port — while fused-select frames are in flight."""
    specs = [{"shape": "out", "vid": 1, "match_vlan": "none",
              "match_vid": 1, "cidr": None},
             {"shape": "pin_select_out", "vid": 1, "match_vlan": "wild",
              "match_vid": 1, "cidr": None}]
    chain = ChainInstance(2, specs)
    hop1 = chain.hops[1]
    extra_port, extra_rx = _capture(hop1, "extra")
    chain.captures["extra"] = extra_rx
    victim = next(e for e in hop1.table if e.priority == 100)
    old_ports = victim.actions[0].ports
    record_punt = chain.hops[0].packet_in_handler

    def punt_and_scale_out(dp, port, frame):
        record_punt(dp, port, frame)
        hop1.install(FlowEntry(
            match=victim.match,
            actions=(SelectOutput(old_ports + (extra_port.port_no,),
                                  group="eq/lb:in"),),
            priority=victim.priority))

    chain.hops[0].packet_in_handler = punt_and_scale_out
    return chain


def test_mid_stream_replica_change_falls_back_then_refuses_with_pins():
    """A replica-set change landing mid-batch must invalidate the
    per-replica fused program at flush with zero frames through the
    stale spread, stay identical to the per-hop twin, re-fuse against
    the new replica set on the next batch — and preserve every
    existing flow's state-table pin across all of it."""
    flows = [{"vlan": None, "sport": 1000 + i, "dst_net": 10,
              "payload": b"one-%d" % i} for i in range(6)]
    punt_frame = {"vlan": 3, "sport": 1999, "dst_net": 10,
                  "payload": b"scale"}
    batch2 = [dict(flows[0], payload=b"two-0"), punt_frame,
              dict(flows[1], payload=b"two-1")]
    batch3 = [dict(spec, payload=b"three-%d" % i)
              for i, spec in enumerate(flows)]
    new_flows = [{"vlan": None, "sport": 3000 + i, "dst_net": 11,
                  "payload": b"new-%d" % i} for i in range(12)]

    fused = _replica_change_instance()
    per_hop = _replica_change_instance()
    for hop in per_hop.hops:
        hop.fusion.enabled = False
    for chain in (fused, per_hop):
        first = chain.hops[0]
        first.process_batch_from(1, _frames(flows))
        first.process_batch_from(1, _frames(batch2))
        first.process_batch_from(1, _frames(batch3 + new_flows))

    assert fused.observe() == per_hop.observe()
    engine = fused.hops[0].fusion
    # Batch 1 fused; the mid-batch reinstall invalidated at flush and
    # both matched frames of batch 2 fell back per-hop (zero frames
    # through the stale program); batch 3 re-fused per-replica against
    # the grown set.
    assert engine.invalidations == 1
    assert engine.programs_built == 2
    assert engine.hits == len(flows) + len(batch3) + len(new_flows)
    assert engine.misses == 2
    # Pins survived the replica change: each established flow's
    # batch-3 frame egressed on the same replica as its batch-1 frame,
    # whatever rendezvous over the grown set would now say.
    captures = fused.captures
    for i in range(len(flows)):
        owner = [name for name in ("final", "tee1", "extra")
                 if any(b"one-%d" % i in fr for fr in captures[name])]
        after = [name for name in ("final", "tee1", "extra")
                 if any(b"three-%d" % i in fr for fr in captures[name])]
        assert owner == after, f"flow {i} moved: {owner} -> {after}"
    state = fused.hops[1].flow_state.table("eq/lb:in")
    stats = state.stats()
    assert stats["pinned"] >= len(batch3)
    assert stats["remapped"] == 0
    # The new replica actually takes traffic from the new flows.
    assert captures["extra"], "grown replica never engaged"
