"""Multi-node orchestrator tests."""

import pytest

from repro.core import ComputeNode, OrchestrationError
from repro.core.multinode import MultiNodeOrchestrator
from repro.nffg.model import Nffg
from repro.resources.capabilities import NodeCapabilities, NodeClass


def cpe_node(name="cpe"):
    node = ComputeNode(name,
                       capabilities=NodeCapabilities.residential_cpe())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def dc_node(name="dc"):
    node = ComputeNode(
        name, capabilities=NodeCapabilities.datacenter_server())
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    return node


def nat_graph(graph_id="g1"):
    graph = Nffg(graph_id=graph_id)
    graph.add_nf("nat1", "nat", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")
    return graph


def dpi_graph(graph_id="heavy"):
    graph = Nffg(graph_id=graph_id)
    graph.add_nf("dpi1", "dpi")
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:dpi1:in")
    graph.add_flow_rule("r2", "vnf:dpi1:out", "endpoint:wan")
    return graph


def fleet():
    orchestrator = MultiNodeOrchestrator()
    orchestrator.add_node(cpe_node())
    orchestrator.add_node(dc_node())
    return orchestrator


def test_cheap_graph_lands_on_the_edge():
    orchestrator = fleet()
    orchestrator.deploy(nat_graph())
    assert orchestrator.locate("g1") == "cpe"


def test_heavy_graph_overflows_to_dc():
    orchestrator = fleet()
    orchestrator.deploy(dpi_graph())
    # 512 MB DPI doesn't fit the 512 MB CPE (64 MB host headroom).
    assert orchestrator.locate("heavy") == "dc"


def test_explicit_node_pin():
    orchestrator = fleet()
    orchestrator.deploy(nat_graph(), node_name="dc")
    assert orchestrator.locate("g1") == "dc"


def test_duplicate_graph_rejected():
    orchestrator = fleet()
    orchestrator.deploy(nat_graph())
    with pytest.raises(OrchestrationError, match="already deployed"):
        orchestrator.deploy(nat_graph())


def test_nothing_feasible_raises():
    orchestrator = MultiNodeOrchestrator()
    orchestrator.add_node(cpe_node())
    with pytest.raises(OrchestrationError, match="no node"):
        orchestrator.deploy(dpi_graph())  # no DC in the fleet


def test_undeploy_releases_node():
    orchestrator = fleet()
    orchestrator.deploy(nat_graph())
    orchestrator.undeploy("g1")
    with pytest.raises(OrchestrationError):
        orchestrator.locate("g1")
    cpe = orchestrator.node("cpe")
    assert cpe.orchestrator.list_graphs() == []


def test_fleet_status_aggregates():
    orchestrator = fleet()
    orchestrator.deploy(nat_graph())
    orchestrator.deploy(dpi_graph())
    status = orchestrator.fleet_status()
    assert status["graphs"] == {"g1": "cpe", "heavy": "dc"}
    assert status["nodes"]["cpe"]["class"] == "cpe"
    assert status["nodes"]["dc"]["graphs"] == ["heavy"]


def test_missing_endpoint_interface_excludes_node():
    orchestrator = MultiNodeOrchestrator()
    bare = ComputeNode("bare",
                       capabilities=NodeCapabilities.residential_cpe())
    orchestrator.add_node(bare)  # no physical interfaces registered
    with pytest.raises(OrchestrationError, match="no node"):
        orchestrator.deploy(nat_graph())


def test_duplicate_node_name_rejected():
    orchestrator = fleet()
    with pytest.raises(ValueError):
        orchestrator.add_node(cpe_node())


def test_node_down_replaces_graph_on_another_node():
    orchestrator = fleet()
    orchestrator.deploy(nat_graph())
    assert orchestrator.locate("g1") == "cpe"

    orchestrator.mark_node_down("cpe")
    moved = orchestrator.reconcile()

    assert moved == ["g1"]
    assert orchestrator.locate("g1") == "dc"
    dc = orchestrator.node("dc")
    assert dc.orchestrator.list_graphs() == ["g1"]
    assert dc.compute.get("g1-nat1").is_running
    kinds = [event.kind for event in orchestrator.journal.events("g1")]
    assert kinds == ["node-down", "re-placed"]
    status = orchestrator.fleet_status()
    assert status["nodes"]["cpe"]["up"] is False
    assert status["graphs"]["g1"] == "dc"


def test_down_node_excluded_from_placement():
    orchestrator = fleet()
    orchestrator.mark_node_down("cpe")
    orchestrator.deploy(nat_graph())
    assert orchestrator.locate("g1") == "dc"
    with pytest.raises(OrchestrationError, match="marked down"):
        orchestrator.deploy(nat_graph("g2"), node_name="cpe")


def test_replace_with_no_capacity_keeps_graph_booked():
    orchestrator = MultiNodeOrchestrator()
    orchestrator.add_node(cpe_node())
    orchestrator.deploy(nat_graph())
    orchestrator.mark_node_down("cpe")
    assert orchestrator.reconcile() == []
    assert orchestrator.locate("g1") == "cpe"  # still booked on the host
    kinds = [event.kind for event in orchestrator.journal.events("g1")]
    assert kinds[-1] == "re-place-failed"


def test_returning_node_forgets_replaced_graphs():
    orchestrator = fleet()
    orchestrator.deploy(nat_graph())
    orchestrator.mark_node_down("cpe")
    orchestrator.reconcile()
    cpe = orchestrator.node("cpe")
    assert cpe.orchestrator.list_graphs() == ["g1"]  # stale crash state

    orchestrator.mark_node_up("cpe")
    assert cpe.orchestrator.list_graphs() == []
    assert orchestrator.locate("g1") == "dc"
    # The node is schedulable again.
    orchestrator.deploy(nat_graph("g2"))
    assert orchestrator.locate("g2") == "cpe"
