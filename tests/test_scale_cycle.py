"""Scale-cycle differential: 1 -> 3 -> 1 with live stateful flows.

The acceptance scenario for consistent-hash steering + flow state at
the *node* level: a stateful (NAT-style) chain NF is deployed at one
replica, established connections open, the graph scales out to three
replicas mid-conversation, new connections open and finish across the
spread, and the graph drains back to one replica — all while the
original connections keep talking.

Three invariants, checked byte-for-byte against a never-scaled oracle
node receiving the identical traffic:

* **zero connection breakage** — replaying each replica's ingress in
  delivery order against NAT semantics (a replica only knows flows
  whose SYN it saw), no data frame may land on a replica without its
  connection state;
* **established flows stay home** — every frame of every phase-1 flow
  lands on replica 0 (``dpi``), whose NAT table predates the spread:
  unknown-but-established flows are adopted, not sprayed;
* **nothing lost, nothing altered** — the multiset of frames delivered
  into NFs across the whole cycle equals the oracle's exactly.
"""

from repro.net import MacAddress, parse_frame
from repro.net.builder import make_tcp_frame
from repro.switch import flow_key

from tests.test_elastic_scaling import dpi_graph, make_node

SRC = MacAddress("02:5c:00:00:00:01")
DST = MacAddress("02:5c:00:00:00:02")

SYN, DATA, FIN = 0x02, 0x18, 0x11

PHASE1_FLOWS = 20
PHASE2_FLOWS = 30


def _frame(flow: int, flags: int) -> bytes:
    payload = bytes([flow % 251, flags]) * 5 if flags & 0x10 else b""
    return make_tcp_frame(
        SRC, DST, f"10.6.{flow % 200}.{1 + flow // 200}", "10.7.0.1",
        5000 + flow, 8080, payload, flags=flags)


def _capture_into(node, graph_id, captured):
    """Like ``capture_nf_ingress`` but cumulative: existing sinks keep
    their frames across scale events, new replicas get fresh sinks."""
    record = node.orchestrator.deployed[graph_id]
    for nf_id, instance in record.instances.items():
        sink = captured.setdefault(nf_id, [])
        for device in instance.unique_switch_devices():
            inner = device.peer
            inner.detach_handler()
            inner.attach_handler(
                lambda dev, frame, s=sink: s.append(frame.to_bytes()),
                batch_handler=lambda dev, frames, s=sink:
                    s.extend(frame.to_bytes() for frame in frames))
    return captured


def _drive(node, captured):
    """The full cycle's traffic; scale events only on the given node
    when it was deployed with ``scale=True``."""
    scale = node.__dict__.get("_cycle_scales", False)
    phase1 = range(PHASE1_FLOWS)
    phase2 = range(PHASE1_FLOWS, PHASE1_FLOWS + PHASE2_FLOWS)

    def send(frames):
        node.steering.inject_batch("lan0", list(frames))

    # Phase A (1 replica): S1 handshakes + first data.
    send(_frame(flow, SYN) for flow in phase1)
    send(_frame(flow, DATA) for flow in phase1)

    # Phase B: scale out to 3 mid-conversation.
    if scale:
        node.update(dpi_graph(replicas=3))
        _capture_into(node, "eg", captured)
    send(_frame(flow, DATA) for flow in phase1)      # S1 continues
    send(_frame(flow, SYN) for flow in phase2)       # S2 opens
    send(_frame(flow, DATA) for flow in phase2)
    send(_frame(flow, DATA) for flow in phase1)      # interleaved S1
    send(_frame(flow, DATA) for flow in phase2)
    send(_frame(flow, FIN) for flow in phase2)       # S2 finishes

    # Phase C: drain back to 1; S1 still mid-conversation.
    if scale:
        node.update(dpi_graph(replicas=1))
    send(_frame(flow, DATA) for flow in phase1)


def _replay_nat(captured):
    """Per-replica NAT replay: (broken, owner-by-flow, frames-by-flow)."""
    broken = []
    owners: dict = {}
    touched: dict = {}
    for nf_id, frames in captured.items():
        known = set()
        for raw in frames:
            parsed = parse_frame(raw)
            key = flow_key(parsed)
            touched.setdefault(key, set()).add(nf_id)
            if parsed.tcp.flags & 0x02:
                known.add(key)
                owners[key] = nf_id
            elif key not in known:
                broken.append((nf_id, key))
    return broken, owners, touched


def test_scale_cycle_differential_against_single_replica_oracle():
    scaled = make_node("cycle-scaled")
    scaled.deploy(dpi_graph())
    scaled.__dict__["_cycle_scales"] = True
    scaled_captured = _capture_into(scaled, "eg", {})

    oracle = make_node("cycle-oracle")
    oracle.deploy(dpi_graph())
    oracle_captured = _capture_into(oracle, "eg", {})

    _drive(scaled, scaled_captured)
    _drive(oracle, oracle_captured)

    # Per phase-1 flow: SYN + 4 data; per phase-2 flow: SYN + 2 data
    # + FIN.
    total_frames = PHASE1_FLOWS * 5 + PHASE2_FLOWS * 4

    # Byte-for-byte: the union of replica ingress on the scaled node
    # is exactly the oracle's single-replica ingress (order aside).
    scaled_all = sorted(raw for frames in scaled_captured.values()
                        for raw in frames)
    oracle_all = sorted(raw for frames in oracle_captured.values()
                        for raw in frames)
    assert len(oracle_all) == total_frames
    assert scaled_all == oracle_all

    # NAT replay: zero breakage on either node.
    broken, owners, touched = _replay_nat(scaled_captured)
    assert broken == [], f"{len(broken)} connection-breaking frames"
    oracle_broken, _, _ = _replay_nat(oracle_captured)
    assert oracle_broken == []

    # Every phase-1 flow lived its whole life on replica 0: its SYN
    # predates the spread, so adoption (not rendezvous) must route it.
    for flow in range(PHASE1_FLOWS):
        key = flow_key(parse_frame(_frame(flow, DATA)))
        assert owners[key] == "dpi"
        assert touched[key] == {"dpi"}, (
            f"phase-1 flow {flow} strayed to {touched[key]}")

    # The spread really load-balanced: phase-2 flows used >1 replica.
    phase2_replicas = set()
    for flow in range(PHASE1_FLOWS, PHASE1_FLOWS + PHASE2_FLOWS):
        key = flow_key(parse_frame(_frame(flow, SYN)))
        replicas = touched[key]
        assert len(replicas) == 1, f"flow {flow} split across {replicas}"
        phase2_replicas |= replicas
    assert len(phase2_replicas) >= 2

    # The state table saw it all: phase-1 flows adopted once each,
    # everything else pinned after first sight, nothing remapped (no
    # replica died mid-spread).
    stats = scaled.steering.flow_state_stats()
    totals = {key: sum(s[key] for s in stats.values())
              for key in ("adopted", "pinned", "remapped")}
    assert totals["adopted"] == PHASE1_FLOWS
    assert totals["pinned"] > 0
    assert totals["remapped"] == 0

    # The oracle never consulted a state table (no LB rule at 1
    # replica) — the differential really compares against plain
    # single-instance forwarding.
    oracle_stats = oracle.steering.flow_state_stats()
    assert all(s["inserted"] == 0 and s["adopted"] == 0
               for s in oracle_stats.values())
