"""CLI subcommand tests (argument wiring + output contracts)."""

import json

import pytest

from repro.cli.main import main
from repro.nffg.json_codec import nffg_to_json
from repro.nffg.model import Nffg


def nat_graph_json() -> str:
    graph = Nffg(graph_id="cli-test")
    graph.add_nf("nat1", "nat", config={
        "lan.address": "192.168.1.1/24",
        "wan.address": "203.0.113.2/24",
        "gateway": "203.0.113.1"})
    graph.add_endpoint("lan", "lan0")
    graph.add_endpoint("wan", "wan0")
    graph.add_flow_rule("r1", "endpoint:lan", "vnf:nat1:lan")
    graph.add_flow_rule("r2", "vnf:nat1:lan", "endpoint:lan")
    graph.add_flow_rule("r3", "vnf:nat1:wan", "endpoint:wan")
    graph.add_flow_rule("r4", "endpoint:wan", "vnf:nat1:wan",
                        ip_dst="203.0.113.0/24")
    return nffg_to_json(graph)


def test_table1_command(capsys):
    assert main(["table1", "--duration", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "KVM/QEMU" in out and "Native NF" in out
    assert "796" in out  # paper column present


def test_node_command(capsys):
    assert main(["node"]) == 0
    description = json.loads(capsys.readouterr().out)
    assert description["class"] == "cpe"
    assert "nnfs" in description


def test_deploy_command(tmp_path, capsys):
    path = tmp_path / "graph.json"
    path.write_text(nat_graph_json())
    assert main(["deploy", str(path), "--show-flows"]) == 0
    out = capsys.readouterr().out
    assert "nat1: native" in out
    assert "datapath LSI-0" in out


def test_deploy_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["deploy", str(tmp_path / "nope.json")])


def test_validate_ok(tmp_path, capsys):
    path = tmp_path / "graph.json"
    path.write_text(nat_graph_json())
    assert main(["validate", str(path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_validate_bad_graph(tmp_path, capsys):
    graph = Nffg(graph_id="broken")
    graph.add_nf("orphan", "nat")
    path = tmp_path / "bad.json"
    path.write_text(nffg_to_json(graph))
    assert main(["validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


@pytest.fixture
def served_node():
    from repro.core.node import ComputeNode
    from repro.nffg.json_codec import nffg_from_json
    from repro.rest.server import NodeHttpServer

    node = ComputeNode("cli-served")
    node.add_physical_interface("lan0")
    node.add_physical_interface("wan0")
    server = NodeHttpServer(node, port=0).start()
    node.deploy(nffg_from_json(nat_graph_json()))
    try:
        yield node, server
    finally:
        server.stop()


def test_graph_events_command(served_node, capsys):
    node, server = served_node
    assert main(["graph", "events", "cli-test", "--url", server.url]) == 0
    out = capsys.readouterr().out
    assert "desired-set" in out
    assert "converged" in out


def test_graph_reconcile_command(served_node, capsys):
    node, server = served_node
    assert main(["graph", "reconcile", "cli-test",
                 "--url", server.url]) == 0
    out = capsys.readouterr().out
    assert "converged" in out


def test_graph_status_command(served_node, capsys):
    node, server = served_node
    assert main(["graph", "status", "cli-test", "--url", server.url]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["graph-id"] == "cli-test"
    assert status["converged"] is True


def test_graph_events_unknown_graph_exits(served_node):
    node, server = served_node
    with pytest.raises(SystemExit, match="404"):
        main(["graph", "events", "ghost", "--url", server.url])


def test_graph_command_unreachable_node_exits():
    with pytest.raises(SystemExit, match="cannot reach"):
        main(["graph", "events", "g1",
              "--url", "http://127.0.0.1:9"])  # discard port: refused
