"""Templates, repository, resolver and scheduler tests."""

import pytest

from repro.catalog.repository import VnfRepository
from repro.catalog.resolver import (
    NnfAvailability,
    ResolutionError,
    ResolutionPolicy,
    VnfResolver,
)
from repro.catalog.scheduler import (
    NodeDescriptor,
    PlacementError,
    VnfScheduler,
)
from repro.catalog.templates import NfImplementation, NfTemplate, Technology
from repro.resources.capabilities import NodeCapabilities, NodeClass


def template_with(*technologies, proximity=None, plugin="p"):
    impls = []
    for technology in technologies:
        impls.append(NfImplementation(
            technology=technology, image=f"img-{technology.value}",
            cpu_cores=1.0, ram_mb=100.0, disk_mb=10.0,
            plugin=plugin if technology is Technology.NATIVE else None))
    return NfTemplate(name="t", functional_type="x", ports=("lan", "wan"),
                      implementations=tuple(impls), proximity=proximity)


class TestTemplates:
    def test_native_without_plugin_rejected(self):
        with pytest.raises(ValueError, match="plugin"):
            NfImplementation(technology=Technology.NATIVE, image="i",
                             cpu_cores=1, ram_mb=1, disk_mb=1)

    def test_duplicate_technologies_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            template_with(Technology.VM, Technology.VM)

    def test_ports_required(self):
        with pytest.raises(ValueError, match="ports"):
            NfTemplate(name="t", functional_type="x", ports=(),
                       implementations=(NfImplementation(
                           technology=Technology.VM, image="i",
                           cpu_cores=1, ram_mb=1, disk_mb=1),))

    def test_required_features_include_technology(self):
        impl = NfImplementation(
            technology=Technology.DPDK, image="i", cpu_cores=1,
            ram_mb=1, disk_mb=1,
            extra_features=frozenset({"hugepages"}))
        assert impl.required_features == {"dpdk", "hugepages"}

    def test_implementation_for(self):
        template = template_with(Technology.VM, Technology.DOCKER)
        assert template.implementation_for(
            Technology.VM).technology is Technology.VM
        assert template.implementation_for(Technology.NATIVE) is None


class TestRepository:
    def test_stock_has_expected_templates(self):
        repo = VnfRepository.stock()
        for name in ("ipsec-endpoint", "nat", "firewall", "bridge",
                     "dhcp-server", "dpi"):
            assert name in repo

    def test_duplicate_registration_rejected(self):
        repo = VnfRepository()
        repo.register(template_with(Technology.VM))
        with pytest.raises(ValueError):
            repo.register(template_with(Technology.VM))

    def test_by_functional_type(self):
        repo = VnfRepository.stock()
        assert [t.name for t in repo.by_functional_type("nat")] == ["nat"]

    def test_missing_template_raises(self):
        with pytest.raises(KeyError):
            VnfRepository().get("ghost")

    def test_stock_ipsec_matches_paper_resources(self):
        repo = VnfRepository.stock()
        template = repo.get("ipsec-endpoint")
        vm = template.implementation_for(Technology.VM)
        native = template.implementation_for(Technology.NATIVE)
        assert vm.ram_mb == pytest.approx(390.6)
        assert native.ram_mb == pytest.approx(19.4)
        assert native.disk_mb == pytest.approx(5.0)
        assert not vm.uses_kernel_datapath
        assert native.uses_kernel_datapath


class TestResolver:
    def cpe(self):
        return NodeCapabilities.residential_cpe_with_kvm()

    def test_prefers_native_when_usable(self):
        resolver = VnfResolver(self.cpe())
        template = template_with(Technology.VM, Technology.DOCKER,
                                 Technology.NATIVE)
        assert resolver.resolve(template).technology is Technology.NATIVE

    def test_prefer_vm_policy(self):
        resolver = VnfResolver(self.cpe(),
                               policy=ResolutionPolicy.PREFER_VM)
        template = template_with(Technology.VM, Technology.NATIVE)
        assert resolver.resolve(template).technology is Technology.VM

    def test_missing_feature_excludes_implementation(self):
        caps = NodeCapabilities.residential_cpe()  # no kvm
        resolver = VnfResolver(caps)
        template = template_with(Technology.VM)
        with pytest.raises(ResolutionError, match="no feasible"):
            resolver.resolve(template)

    def test_busy_exclusive_nnf_falls_back(self):
        status = {"p": NnfAvailability(installed=True, sharable=False,
                                       busy=True)}
        resolver = VnfResolver(self.cpe(),
                               nnf_status=lambda name: status[name])
        template = template_with(Technology.DOCKER, Technology.NATIVE)
        choice = resolver.resolve(template)
        assert choice.technology is Technology.DOCKER
        assert resolver.fallbacks == 1

    def test_busy_sharable_nnf_still_usable(self):
        status = {"p": NnfAvailability(installed=True, sharable=True,
                                       busy=True)}
        resolver = VnfResolver(self.cpe(),
                               nnf_status=lambda name: status[name])
        template = template_with(Technology.DOCKER, Technology.NATIVE)
        assert resolver.resolve(template).technology is Technology.NATIVE

    def test_not_installed_nnf_excluded(self):
        resolver = VnfResolver(
            self.cpe(),
            nnf_status=lambda name: NnfAvailability(installed=False))
        template = template_with(Technology.DOCKER, Technology.NATIVE)
        assert resolver.resolve(template).technology is Technology.DOCKER

    def test_forced_technology_honoured(self):
        resolver = VnfResolver(self.cpe())
        template = template_with(Technology.VM, Technology.NATIVE)
        choice = resolver.resolve(template, forced=Technology.VM)
        assert choice.technology is Technology.VM

    def test_forced_missing_technology_rejected(self):
        resolver = VnfResolver(self.cpe())
        template = template_with(Technology.NATIVE)
        with pytest.raises(ResolutionError, match="no vm implementation"):
            resolver.resolve(template, forced=Technology.VM)

    def test_forced_infeasible_rejected(self):
        caps = NodeCapabilities.residential_cpe()  # no kvm
        resolver = VnfResolver(caps)
        template = template_with(Technology.VM, Technology.NATIVE)
        with pytest.raises(ResolutionError, match="not"):
            resolver.resolve(template, forced=Technology.VM)

    def test_min_image_policy(self):
        repo = VnfRepository.stock()
        resolver = VnfResolver(self.cpe(),
                               policy=ResolutionPolicy.MIN_IMAGE)
        choice = resolver.resolve(repo.get("ipsec-endpoint"))
        assert choice.technology is Technology.NATIVE  # 5 MB package


class TestScheduler:
    def nodes(self):
        cpe_caps = NodeCapabilities.residential_cpe_with_kvm()
        dc_caps = NodeCapabilities.datacenter_server()
        return (NodeDescriptor("cpe", cpe_caps, VnfResolver(cpe_caps)),
                NodeDescriptor("dc", dc_caps, VnfResolver(
                    dc_caps, policy=ResolutionPolicy.PREFER_VM)))

    def test_pinned_nf_goes_to_cpe(self):
        cpe, dc = self.nodes()
        scheduler = VnfScheduler([cpe, dc])
        repo = VnfRepository.stock()
        placements = scheduler.schedule([repo.get("ipsec-endpoint")])
        assert placements[0].node == "cpe"

    def test_oversized_nf_overflows_to_dc(self):
        # A true residential CPE (512 MB) cannot take the 512 MB DPI
        # container once any headroom is gone; it overflows to the DC.
        cpe_caps = NodeCapabilities(
            node_class=NodeClass.CPE, cpu_cores=2, cpu_mhz=1200,
            ram_mb=256, disk_mb=4096,
            features=frozenset({"native", "docker", "linux"}))
        cpe = NodeDescriptor("cpe", cpe_caps, VnfResolver(cpe_caps))
        dc_caps = NodeCapabilities.datacenter_server()
        dc = NodeDescriptor("dc", dc_caps, VnfResolver(
            dc_caps, policy=ResolutionPolicy.PREFER_VM))
        scheduler = VnfScheduler([cpe, dc])
        repo = VnfRepository.stock()
        placements = scheduler.schedule([repo.get("dpi")])
        assert placements[0].node == "dc"

    def test_results_in_input_order(self):
        cpe, dc = self.nodes()
        scheduler = VnfScheduler([cpe, dc])
        repo = VnfRepository.stock()
        templates = [repo.get("dpi"), repo.get("nat"),
                     repo.get("firewall")]
        placements = scheduler.schedule(templates)
        assert [p.nf_name for p in placements] == ["dpi", "nat",
                                                   "firewall"]

    def test_resources_reserved_across_nfs(self):
        cpe_caps = NodeCapabilities(
            node_class=NodeClass.CPE, cpu_cores=1, cpu_mhz=1000,
            ram_mb=64, disk_mb=512,
            features=frozenset({"native", "linux"}))
        cpe = NodeDescriptor("cpe", cpe_caps, VnfResolver(cpe_caps))
        dc_caps = NodeCapabilities.datacenter_server()
        dc = NodeDescriptor("dc", dc_caps, VnfResolver(dc_caps))
        scheduler = VnfScheduler([cpe, dc])
        repo = VnfRepository.stock()
        # Two IPsec endpoints: 19.4 MB each; only one fits in 64 MB
        # after it claims 0.3 cores... the second still fits. Use RAM
        # to force the split: shrink to one-NF headroom.
        placements = scheduler.schedule([repo.get("ipsec-endpoint"),
                                         repo.get("ipsec-endpoint")])
        assert {p.node for p in placements} <= {"cpe", "dc"}
        assert cpe.ram_free_mb >= 0

    def test_unplaceable_service_raises(self):
        caps = NodeCapabilities(
            node_class=NodeClass.CPE, cpu_cores=1, cpu_mhz=600,
            ram_mb=64, disk_mb=128, features=frozenset({"linux"}))
        node = NodeDescriptor("weak", caps, VnfResolver(caps))
        scheduler = VnfScheduler([node])
        repo = VnfRepository.stock()
        with pytest.raises(PlacementError):
            scheduler.schedule([repo.get("dpi")])

    def test_duplicate_node_names_rejected(self):
        cpe, _dc = self.nodes()
        with pytest.raises(ValueError):
            VnfScheduler([cpe, cpe])

    def test_empty_node_list_rejected(self):
        with pytest.raises(ValueError):
            VnfScheduler([])
