"""NNF framework: plugin API, registry, adaptation layer, sharing."""

import pytest

from repro.catalog.resolver import NnfAvailability
from repro.nnf.adaptation import AdaptationLayer
from repro.nnf.plugin import NnfPlugin, PluginContext, PluginError
from repro.nnf.plugins import stock_registry
from repro.nnf.registry import NnfRegistry
from repro.nnf.sharing import SharedNnfManager, SharingError


class TestPluginContext:
    def test_port_lookup(self):
        ctx = PluginContext(instance_id="i", netns="ns",
                            ports={"lan": "eth0"})
        assert ctx.port("lan") == "eth0"
        with pytest.raises(PluginError, match="no device"):
            ctx.port("wan")

    def test_require_config(self):
        ctx = PluginContext(instance_id="i", netns="ns",
                            config={"k": "v"})
        assert ctx.require_config("k") == "v"
        with pytest.raises(PluginError, match="missing required"):
            ctx.require_config("absent")


class TestRegistry:
    def test_stock_registry_contents(self):
        registry = stock_registry()
        for name in ("iptables-nat", "iptables-firewall", "linuxbridge",
                     "strongswan", "dnsmasq", "static-router"):
            assert name in registry

    def test_installed_depends_on_package(self):
        registry = stock_registry(installed=("iptables",))
        assert registry.is_installed("iptables-nat")
        assert not registry.is_installed("strongswan")

    def test_unknown_plugin_not_installed(self):
        registry = stock_registry()
        assert not registry.is_installed("ghost")
        assert registry.availability("ghost").installed is False

    def test_duplicate_registration_rejected(self):
        registry = NnfRegistry()
        plugin = NnfPlugin()
        plugin.name = "x"
        registry.register(plugin)
        with pytest.raises(ValueError):
            registry.register(plugin)

    def test_availability_of_exclusive_plugin(self):
        registry = stock_registry()
        before = registry.availability("strongswan")
        assert before.usable and not before.busy
        registry.claim("strongswan", "g1")
        after = registry.availability("strongswan")
        assert after.busy and not after.usable
        registry.unclaim("strongswan", "g1")
        assert registry.availability("strongswan").usable

    def test_sharable_plugin_usable_while_busy(self):
        registry = stock_registry()
        registry.claim("iptables-nat", "g1")
        availability = registry.availability("iptables-nat")
        assert availability.sharable
        assert availability.usable

    def test_describe_rows(self):
        registry = stock_registry()
        registry.claim("dnsmasq", "g9")
        rows = {row["name"]: row for row in registry.describe()}
        assert rows["iptables-nat"]["sharable"] is True
        assert rows["dnsmasq"]["in-use-by"] == ["g9"]
        assert rows["strongswan"]["single-interface"] is False


class TestAdaptationLayer:
    def test_per_port_vids_unique(self):
        layer = AdaptationLayer()
        attachment = layer.attach_graph("g1", ["lan", "wan"])
        assert attachment.port_vids["lan"] != attachment.port_vids["wan"]
        assert attachment.port_devices["lan"].startswith("mux0.")

    def test_shared_vid_mode(self):
        layer = AdaptationLayer(per_port_vids=False)
        attachment = layer.attach_graph("g1", ["p0", "p1"])
        assert attachment.port_vids["p0"] == attachment.port_vids["p1"]

    def test_marks_and_vids_distinct_across_graphs(self):
        layer = AdaptationLayer()
        a = layer.attach_graph("g1", ["lan", "wan"])
        b = layer.attach_graph("g2", ["lan", "wan"])
        assert a.mark != b.mark
        assert set(a.port_vids.values()).isdisjoint(b.port_vids.values())

    def test_double_attach_rejected(self):
        layer = AdaptationLayer()
        layer.attach_graph("g1", ["lan"])
        with pytest.raises(ValueError):
            layer.attach_graph("g1", ["lan"])

    def test_detach_then_reattach(self):
        layer = AdaptationLayer()
        layer.attach_graph("g1", ["lan"])
        layer.detach_graph("g1")
        assert layer.graphs == []
        layer.attach_graph("g1", ["lan"])

    def test_subinterface_commands(self):
        layer = AdaptationLayer()
        attachment = layer.attach_graph("g1", ["lan"])
        commands = layer.subinterface_commands("nnf-shared", attachment)
        vid = attachment.port_vids["lan"]
        assert any(f"type vlan id {vid}" in command for command in commands)
        assert all(command.startswith("ip netns exec nnf-shared")
                   for command in commands)

    def test_vid_exhaustion(self):
        layer = AdaptationLayer(vid_base=4094)
        layer.attach_graph("g1", ["lan"])
        with pytest.raises(OverflowError):
            layer.attach_graph("g2", ["lan"])


class TestSharedManager:
    def plugin(self):
        registry = stock_registry()
        return registry.get("iptables-nat")

    def test_ensure_instance_idempotent(self):
        manager = SharedNnfManager()
        first, created1 = manager.ensure_instance(self.plugin(), "ns")
        second, created2 = manager.ensure_instance(self.plugin(), "ns")
        assert first is second
        assert created1 and not created2

    def test_non_sharable_rejected(self):
        manager = SharedNnfManager()
        registry = stock_registry()
        with pytest.raises(SharingError, match="not sharable"):
            manager.ensure_instance(registry.get("strongswan"), "ns")

    def test_attach_detach_lifecycle(self):
        manager = SharedNnfManager()
        manager.ensure_instance(self.plugin(), "ns")
        attachment = manager.attach("iptables-nat", "g1", ["lan", "wan"])
        assert attachment.mark == 1
        with pytest.raises(SharingError, match="already attached"):
            manager.attach("iptables-nat", "g1", ["lan"])
        manager.detach("iptables-nat", "g1")
        with pytest.raises(SharingError, match="not attached"):
            manager.detach("iptables-nat", "g1")

    def test_release_only_when_unused(self):
        manager = SharedNnfManager()
        manager.ensure_instance(self.plugin(), "ns")
        manager.attach("iptables-nat", "g1", ["lan"])
        assert manager.release_if_unused("iptables-nat") is None
        manager.detach("iptables-nat", "g1")
        released = manager.release_if_unused("iptables-nat")
        assert released is not None
        assert manager.instance_of("iptables-nat") is None

    def test_context_includes_mark_and_devices(self):
        manager = SharedNnfManager()
        instance, _created = manager.ensure_instance(self.plugin(), "ns")
        manager.attach("iptables-nat", "g1", ["lan", "wan"])
        ctx = instance.context_for("g1", {"gateway": "1.2.3.4"})
        assert ctx.mark == 1
        assert ctx.ports["lan"].startswith("mux0.")
        assert ctx.config["gateway"] == "1.2.3.4"


class TestPluginScripts:
    def test_base_plugin_sharable_guards(self):
        plugin = NnfPlugin()
        ctx = PluginContext(instance_id="i", netns="ns")
        with pytest.raises(PluginError):
            plugin.add_path_script(ctx)
        with pytest.raises(PluginError):
            plugin.remove_path_script(ctx)

    def test_nat_add_and_remove_paths_are_symmetric(self):
        registry = stock_registry()
        plugin = registry.get("iptables-nat")
        ctx = PluginContext(instance_id="i", netns="ns",
                            ports={"lan": "mux0.101", "wan": "mux0.102"},
                            config={"lan.address": "10.0.0.1/24",
                                    "wan.address": "100.64.0.2/24",
                                    "gateway": "100.64.0.1"},
                            mark=3)
        added = plugin.add_path_script(ctx)
        removed = plugin.remove_path_script(ctx)
        add_rules = [c.replace(" -A ", " # ") for c in added
                     if " -A " in c]
        del_rules = [c.replace(" -D ", " # ") for c in removed
                     if " -D " in c]
        assert set(del_rules) <= set(add_rules)

    def test_strongswan_requires_tunnel_config(self):
        registry = stock_registry()
        plugin = registry.get("strongswan")
        ctx = PluginContext(instance_id="i", netns="ns",
                            ports={"lan": "eth0", "wan": "eth1"},
                            config={})
        with pytest.raises(PluginError):
            plugin.configure_script(ctx)

    def test_strongswan_sa_parameters_symmetric(self):
        from repro.nnf.plugins.strongswan import tunnel_sa_parameters
        left = tunnel_sa_parameters("1.1.1.1", "2.2.2.2", "psk")
        right = tunnel_sa_parameters("2.2.2.2", "1.1.1.1", "psk")
        # A's outbound SA must equal B's inbound SA.
        assert left["out"] == right["in"]
        assert left["in"] == right["out"]
        # Directions use distinct SPIs and keys.
        assert left["out"]["spi"] != left["in"]["spi"]
        assert left["out"]["enc"] != left["in"]["enc"]

    def test_firewall_policy_rules_allow_mode(self):
        registry = stock_registry()
        plugin = registry.get("iptables-firewall")
        ctx = PluginContext(instance_id="i", netns="ns",
                            ports={"lan": "eth0", "wan": "eth1"},
                            config={"firewall.allow": "udp:53,tcp:443"})
        commands = plugin.configure_script(ctx)
        dports = [c for c in commands if "--dport" in c]
        assert len(dports) == 2
        assert any(c.endswith("-j DROP") for c in commands)

    def test_firewall_policy_rules_deny_mode(self):
        registry = stock_registry()
        plugin = registry.get("iptables-firewall")
        ctx = PluginContext(instance_id="i", netns="ns",
                            ports={"lan": "eth0", "wan": "eth1"},
                            config={"firewall.deny": "tcp:23"})
        commands = plugin.configure_script(ctx)
        assert any("--dport 23" in c and "-j DROP" in c for c in commands)
        assert any(c.endswith("-j ACCEPT") for c in commands)
