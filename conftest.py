"""Repo-wide pytest wiring: the ``perf`` marker and bench JSON output.

Tier-1 (``pytest -x -q``) must stay fast, so tests marked ``perf`` are
skipped unless the marker is selected explicitly::

    PYTHONPATH=src python -m pytest -m perf            # pps sweep
    PYTHONPATH=src python -m pytest -m perf --bench-json out.json

The sweep writes ``BENCH_dataplane.json`` (path overridable with
``--bench-json``) so successive PRs can track the pps trajectory.

``--quick`` shrinks the perf sweep to the smoke configuration (one
table size, chain length 2, best-of-2) asserting only the
no-regression gates::

    PYTHONPATH=src python -m pytest -m perf --quick

Quick runs never overwrite the bench JSON artifact — the trajectory
file always comes from a full sweep.
"""

import os

import pytest

_HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BENCH_JSON = os.path.join(_HERE, "BENCH_dataplane.json")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", default=DEFAULT_BENCH_JSON,
        help="where perf-marked benches write their JSON results "
             "(default: BENCH_dataplane.json at the repo root)")
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="run perf-marked benches in the smoke configuration: "
             "single table size, chain length 2, no-regression gates "
             "only, no JSON artifact written")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: dataplane pps sweeps; excluded from tier-1, run with -m perf")


def pytest_collection_modifyitems(config, items):
    if "perf" in (config.option.markexpr or ""):
        return
    skip = pytest.mark.skip(reason="perf bench: run with `pytest -m perf`")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip)
