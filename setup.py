"""Legacy shim: the offline environment lacks the `wheel` package, so
`pip install -e .` must go through `setup.py develop` (see README)."""
from setuptools import setup

setup()
